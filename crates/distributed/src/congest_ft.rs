//! The CONGEST-model fault-tolerant spanner construction (Theorem 15):
//! the Dinitz–Krauthgamer sampling framework executed with distributed
//! Baswana–Sen, with all iterations simulated in parallel.
//!
//! **Phase 1 — iteration selection.** Each vertex locally picks, for each of
//! the `J = O(f³ log n)` iterations, whether it participates (probability
//! `≈ 1/f`) and sends its list of chosen iteration indices to its neighbours.
//! Each index needs `O(log f + log log n)` bits, so the whole list fits in
//! `O(f²(log f + log log n))` rounds of `O(log n)`-bit messages (whp each
//! vertex participates in `O(f² log n)` iterations). The selection itself is
//! simulated directly; the round cost is charged from the measured list
//! lengths and the bit-packing argument above — exactly the paper's
//! accounting.
//!
//! **Phase 2 — parallel Baswana–Sen.** Every iteration runs distributed
//! Baswana–Sen on the subgraph induced by its participants. The paper's
//! scheduling argument is used verbatim: with high probability each edge has
//! both endpoints participating in at most `O(f log n)` iterations, so each
//! Baswana–Sen round can be simulated in that many real rounds. We run every
//! iteration in the round engine (measuring its own rounds and traffic),
//! measure the *actual* worst per-edge iteration multiplicity, and charge
//! `max_rounds_of_any_iteration × max_edge_multiplicity` rounds for phase 2.

use ftspan::dk::{dk_iteration_count, DkOptions};
use ftspan::{SpannerParams, SpannerStats};
use ftspan_graph::{Graph, VertexId};
use rand::Rng;

use crate::congest_bs::congest_baswana_sen;
use crate::local_spanner::DistributedSpannerResult;
use crate::metrics::RoundStats;

/// Options for [`congest_ft_spanner_with`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CongestFtOptions {
    /// Options of the underlying Dinitz–Krauthgamer sampling (participation
    /// probability, target failure probability, iteration cap).
    pub dk: DkOptions,
    /// Number of words that fit in one CONGEST message (used for the phase-1
    /// bit-packing round count).
    pub words_per_message: usize,
}

impl Default for CongestFtOptions {
    fn default() -> Self {
        Self {
            dk: DkOptions::default(),
            words_per_message: 3,
        }
    }
}

/// Detailed accounting of a Theorem 15 run, on top of the common result.
#[derive(Clone, Debug)]
pub struct CongestFtResult {
    /// The spanner, round statistics, and local-work counters.
    pub result: DistributedSpannerResult,
    /// Number of Dinitz–Krauthgamer iterations executed.
    pub iterations: usize,
    /// Rounds charged to phase 1 (announcing iteration choices).
    pub phase1_rounds: usize,
    /// Rounds charged to phase 2 (congestion-scheduled parallel Baswana–Sen).
    pub phase2_rounds: usize,
    /// The worst number of iterations sharing a single edge (the congestion
    /// factor of the paper's scheduling argument).
    pub max_edge_multiplicity: usize,
    /// The largest round count of any single Baswana–Sen iteration.
    pub max_iteration_rounds: usize,
}

/// Runs the Theorem 15 construction with default options.
///
/// # Examples
///
/// ```
/// use ftspan::SpannerParams;
/// use ftspan_distributed::congest_ft_spanner;
/// use ftspan_graph::generators;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(5);
/// let g = generators::connected_gnp(30, 0.2, &mut rng);
/// let out = congest_ft_spanner(&g, SpannerParams::vertex(2, 1), &mut rng);
/// assert!(out.result.spanner.edge_count() <= g.edge_count());
/// ```
#[must_use]
pub fn congest_ft_spanner<R: Rng + ?Sized>(
    graph: &Graph,
    params: SpannerParams,
    rng: &mut R,
) -> CongestFtResult {
    congest_ft_spanner_with(graph, params, &CongestFtOptions::default(), rng)
}

/// Runs the Theorem 15 construction with explicit options.
#[must_use]
pub fn congest_ft_spanner_with<R: Rng + ?Sized>(
    graph: &Graph,
    params: SpannerParams,
    options: &CongestFtOptions,
    rng: &mut R,
) -> CongestFtResult {
    let n = graph.vertex_count();
    let m = graph.edge_count();
    let k = params.k();
    let f = params.f();
    let mut spanner = Graph::empty_like(graph);
    let mut local_work = SpannerStats {
        algorithm: "congest-ft-spanner",
        input_vertices: n,
        input_edges: m,
        ..SpannerStats::default()
    };

    if f == 0 || n < 2 || m == 0 {
        // Degenerate case: a single Baswana–Sen run suffices.
        let single = congest_baswana_sen(graph, k, rng);
        spanner.union_edges_from(&single.spanner);
        local_work.spanner_edges = spanner.edge_count();
        return CongestFtResult {
            result: DistributedSpannerResult {
                spanner,
                params,
                rounds: single.rounds,
                local_work,
                partitions: 1,
            },
            iterations: 1,
            phase1_rounds: 0,
            phase2_rounds: single.rounds.rounds,
            max_edge_multiplicity: 1,
            max_iteration_rounds: single.rounds.rounds,
        };
    }

    let iterations = dk_iteration_count(n, m, f, &options.dk);
    let participation = options.dk.participation_probability.unwrap_or(if f <= 1 {
        0.5
    } else {
        1.0 / f64::from(f)
    });

    // Phase 1: every vertex picks its iterations locally.
    let mut chosen: Vec<Vec<usize>> = vec![Vec::new(); n];
    for list in &mut chosen {
        for it in 0..iterations {
            if rng.gen_bool(participation) {
                list.push(it);
            }
        }
    }
    // Round cost of announcing the lists to neighbours: each index takes
    // log2(iterations) bits; one message carries words_per_message words of
    // log2(n) bits each.
    let bits_per_index = (iterations.max(2) as f64).log2().ceil().max(1.0);
    let bits_per_message =
        (options.words_per_message as f64) * (n.max(2) as f64).log2().ceil().max(1.0);
    let longest_list = chosen.iter().map(Vec::len).max().unwrap_or(0);
    let phase1_rounds = ((longest_list as f64) * bits_per_index / bits_per_message).ceil() as usize;

    // Phase 2: one distributed Baswana–Sen per iteration, on the induced
    // subgraph of that iteration's participants.
    let mut members_of: Vec<Vec<VertexId>> = vec![Vec::new(); iterations];
    for (v, list) in chosen.iter().enumerate() {
        for &it in list {
            members_of[it].push(VertexId::new(v));
        }
    }
    let mut max_iteration_rounds = 0usize;
    let mut traffic = RoundStats::default();
    for members in &members_of {
        if members.len() < 2 {
            continue;
        }
        let (induced, original) = graph.induced_subgraph(members);
        if induced.edge_count() == 0 {
            continue;
        }
        let run = congest_baswana_sen(&induced, k, rng);
        max_iteration_rounds = max_iteration_rounds.max(run.rounds.rounds);
        traffic = traffic.parallel(run.rounds);
        for (_, edge) in run.spanner.edges() {
            let (a, b) = edge.endpoints();
            let (u, v) = (original[a.index()], original[b.index()]);
            if spanner.edge_between(u, v).is_none() {
                spanner.add_edge(u.index(), v.index(), edge.weight());
            }
        }
    }

    // The scheduling factor: how many iterations contend for the busiest edge.
    let participates = |v: VertexId, it: usize| chosen[v.index()].binary_search(&it).is_ok();
    let mut max_edge_multiplicity = 0usize;
    for (_, edge) in graph.edges() {
        let (u, v) = edge.endpoints();
        let both = (0..iterations)
            .filter(|&it| participates(u, it) && participates(v, it))
            .count();
        max_edge_multiplicity = max_edge_multiplicity.max(both);
    }
    let phase2_rounds = max_iteration_rounds * max_edge_multiplicity.max(1);

    local_work.spanner_edges = spanner.edge_count();
    let rounds = RoundStats {
        rounds: phase1_rounds + phase2_rounds,
        messages: traffic.messages,
        words: traffic.words,
        max_words_per_edge_round: traffic.max_words_per_edge_round,
    };
    CongestFtResult {
        result: DistributedSpannerResult {
            spanner,
            params,
            rounds,
            local_work,
            partitions: iterations,
        },
        iterations,
        phase1_rounds,
        phase2_rounds,
        max_edge_multiplicity,
        max_iteration_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan::bounds;
    use ftspan::verify::{verify_spanner, VerificationMode};
    use ftspan_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_is_a_valid_fault_tolerant_spanner() {
        let mut rng = StdRng::seed_from_u64(20);
        let g = generators::connected_gnp(14, 0.4, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let out = congest_ft_spanner(&g, params, &mut rng);
        let report = verify_spanner(
            &g,
            &out.result.spanner,
            params,
            VerificationMode::Exhaustive,
        );
        assert!(report.is_valid(), "violations: {:?}", report.violations);
    }

    #[test]
    fn size_respects_theorem_15_reference_curve() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = generators::connected_gnp(40, 0.5, &mut rng);
        let params = SpannerParams::vertex(2, 2);
        let out = congest_ft_spanner(&g, params, &mut rng);
        let bound = (4.0 * bounds::congest_size_bound(40, 2, 2)).min(g.edge_count() as f64);
        assert!((out.result.spanner.edge_count() as f64) <= bound);
    }

    #[test]
    fn round_count_matches_the_theorem_shape() {
        let mut rng = StdRng::seed_from_u64(22);
        let g = generators::connected_gnp(60, 0.15, &mut rng);
        let params = SpannerParams::vertex(2, 2);
        let out = congest_ft_spanner(&g, params, &mut rng);
        assert_eq!(
            out.result.rounds.rounds,
            out.phase1_rounds + out.phase2_rounds
        );
        // Generous constant over O(f²(log f + log log n) + k² f log n).
        let bound = 40.0 * bounds::congest_round_bound(60, 2, 2);
        assert!(
            (out.result.rounds.rounds as f64) <= bound,
            "rounds {} exceed {bound}",
            out.result.rounds.rounds
        );
        assert!(out.iterations > 1);
        assert!(out.max_iteration_rounds > 0);
    }

    #[test]
    fn congestion_factor_is_logarithmic_not_equal_to_iterations() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = generators::connected_gnp(50, 0.2, &mut rng);
        let params = SpannerParams::vertex(2, 3);
        let out = congest_ft_spanner(&g, params, &mut rng);
        // The whole point of the two-phase schedule: the busiest edge is
        // shared by far fewer iterations than the total number of iterations.
        assert!(out.max_edge_multiplicity < out.iterations);
        assert!(out.max_edge_multiplicity >= 1);
    }

    #[test]
    fn f_zero_degenerates_to_plain_baswana_sen() {
        let mut rng = StdRng::seed_from_u64(24);
        let g = generators::connected_gnp(20, 0.3, &mut rng);
        let params = SpannerParams::vertex(2, 0);
        let out = congest_ft_spanner(&g, params, &mut rng);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.phase1_rounds, 0);
        let report = verify_spanner(
            &g,
            &out.result.spanner,
            params,
            VerificationMode::Exhaustive,
        );
        assert!(report.is_valid());
    }

    #[test]
    fn messages_respect_congest_budget() {
        let mut rng = StdRng::seed_from_u64(25);
        let g = generators::connected_gnp(30, 0.2, &mut rng);
        let out = congest_ft_spanner(&g, SpannerParams::vertex(2, 1), &mut rng);
        assert!(out.result.rounds.max_words_per_edge_round <= 6);
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        let mut rng = StdRng::seed_from_u64(26);
        for n in 0..3usize {
            let g = Graph::new(n);
            let out = congest_ft_spanner(&g, SpannerParams::vertex(2, 1), &mut rng);
            assert_eq!(out.result.spanner.edge_count(), 0);
        }
    }
}
