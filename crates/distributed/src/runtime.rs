//! A synchronous message-passing round engine over a graph topology.
//!
//! Both standard distributed models are supported by the same engine:
//!
//! * **LOCAL** — in each round every node may send an arbitrarily large
//!   message to each neighbour; only the number of rounds matters.
//! * **CONGEST** — messages are limited to `O(log n)` bits (a constant number
//!   of "words": node identifiers, weights, small counters). The engine
//!   tracks the per-edge word load of every round so algorithms can be
//!   checked against the model's bandwidth limit.
//!
//! Algorithms drive the engine through [`Network::round`], supplying a
//! closure that maps each node's inbox to its outgoing messages. The closure
//! style keeps node state wherever the algorithm finds convenient (usually a
//! `Vec` indexed by vertex) while the engine owns delivery, round counting,
//! and congestion accounting.

use ftspan_graph::{Graph, VertexId};

use crate::metrics::RoundStats;

/// Which distributed model the engine should enforce.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Model {
    /// Unbounded message sizes; only rounds are counted.
    #[default]
    Local,
    /// Messages of at most `words_per_message` words per edge per round.
    Congest {
        /// Bandwidth per edge per round, in words (default 1 in
        /// [`Model::congest`]).
        words_per_message: usize,
    },
}

impl Model {
    /// The standard CONGEST model: one `O(log n)`-bit message (a constant
    /// number of words) per edge per round. We allow 3 words so a message can
    /// carry a vertex id, an edge weight, and a small tag, matching the
    /// paper's "constant number of node IDs and weights".
    #[must_use]
    pub fn congest() -> Self {
        Model::Congest {
            words_per_message: 3,
        }
    }

    /// Returns the per-message word budget, if any.
    #[must_use]
    pub fn word_limit(&self) -> Option<usize> {
        match self {
            Model::Local => None,
            Model::Congest { words_per_message } => Some(*words_per_message),
        }
    }
}

/// A message sent to a neighbour, tagged with its size in words.
#[derive(Clone, Debug, PartialEq)]
pub struct Outgoing<M> {
    /// The neighbour the message is addressed to.
    pub to: VertexId,
    /// The payload.
    pub payload: M,
    /// Size of the payload in words (node ids / weights / counters).
    pub words: usize,
}

impl<M> Outgoing<M> {
    /// Convenience constructor for a one-word message.
    pub fn unit(to: VertexId, payload: M) -> Self {
        Self {
            to,
            payload,
            words: 1,
        }
    }

    /// Constructor with an explicit word count.
    pub fn sized(to: VertexId, payload: M, words: usize) -> Self {
        Self { to, payload, words }
    }
}

/// A message delivered to a node at the start of a round.
#[derive(Clone, Debug, PartialEq)]
pub struct Incoming<M> {
    /// The neighbour that sent the message in the previous round.
    pub from: VertexId,
    /// The payload.
    pub payload: M,
}

/// The synchronous round engine.
///
/// # Examples
///
/// Flood the smallest vertex id through a path graph:
///
/// ```
/// use ftspan_distributed::runtime::{Model, Network, Outgoing};
/// use ftspan_graph::generators;
///
/// let g = generators::path(5);
/// let mut net = Network::new(&g, Model::congest());
/// let mut best: Vec<u32> = (0..5).map(|v| v as u32).collect();
/// for _ in 0..5 {
///     net.round(|v, inbox| {
///         for msg in inbox {
///             best[v.index()] = best[v.index()].min(msg.payload);
///         }
///         let mine = best[v.index()];
///         g.neighbors(v).map(|(n, _)| Outgoing::unit(n, mine)).collect()
///     });
/// }
/// assert!(best.iter().all(|&b| b == 0));
/// assert_eq!(net.stats().rounds, 5);
/// ```
#[derive(Debug)]
pub struct Network<'g, M> {
    graph: &'g Graph,
    model: Model,
    inboxes: Vec<Vec<Incoming<M>>>,
    stats: RoundStats,
    violations: usize,
}

impl<'g, M: Clone> Network<'g, M> {
    /// Creates an engine over the given topology.
    #[must_use]
    pub fn new(graph: &'g Graph, model: Model) -> Self {
        Self {
            graph,
            model,
            inboxes: vec![Vec::new(); graph.vertex_count()],
            stats: RoundStats::default(),
            violations: 0,
        }
    }

    /// The topology the network runs on.
    #[must_use]
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The model being enforced.
    #[must_use]
    pub fn model(&self) -> Model {
        self.model
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> RoundStats {
        self.stats
    }

    /// Number of (edge, round) slots whose traffic exceeded the CONGEST word
    /// budget. Zero for a model-conforming algorithm; always zero in LOCAL.
    #[must_use]
    pub fn congestion_violations(&self) -> usize {
        self.violations
    }

    /// Executes one synchronous round.
    ///
    /// The closure is called once per vertex (in increasing id order) with
    /// the messages delivered this round, and returns the messages to send;
    /// they are delivered at the start of the next round.
    ///
    /// # Panics
    ///
    /// Panics if a message is addressed to a non-neighbour (the models only
    /// allow communication along edges).
    pub fn round<F>(&mut self, mut node_step: F)
    where
        F: FnMut(VertexId, &[Incoming<M>]) -> Vec<Outgoing<M>>,
    {
        let n = self.graph.vertex_count();
        let mut next_inboxes: Vec<Vec<Incoming<M>>> = vec![Vec::new(); n];
        // Words sent over each directed edge slot this round: index 2e for the
        // lower-id endpoint sending towards the higher one, 2e + 1 otherwise.
        let mut edge_words: Vec<usize> = vec![0; 2 * self.graph.edge_count()];
        for v_idx in 0..n {
            let v = VertexId::new(v_idx);
            let outgoing = node_step(v, &self.inboxes[v_idx]);
            for msg in outgoing {
                let edge = self
                    .graph
                    .edge_between(v, msg.to)
                    .unwrap_or_else(|| panic!("{v} attempted to message non-neighbour {}", msg.to));
                let slot = 2 * edge.index() + usize::from(v > msg.to);
                edge_words[slot] += msg.words;
                self.stats.messages += 1;
                self.stats.words += msg.words;
                next_inboxes[msg.to.index()].push(Incoming {
                    from: v,
                    payload: msg.payload,
                });
            }
        }
        let round_max = edge_words.iter().copied().max().unwrap_or(0);
        self.stats.max_words_per_edge_round = self.stats.max_words_per_edge_round.max(round_max);
        if let Some(limit) = self.model.word_limit() {
            self.violations += edge_words.iter().filter(|&&w| w > limit).count();
        }
        self.inboxes = next_inboxes;
        self.stats.rounds += 1;
    }

    /// Runs rounds until `node_step` sends no messages at all, or `max_rounds`
    /// is reached. Returns the number of rounds executed in this call.
    pub fn run_until_quiet<F>(&mut self, max_rounds: usize, mut node_step: F) -> usize
    where
        F: FnMut(VertexId, &[Incoming<M>]) -> Vec<Outgoing<M>>,
    {
        let mut executed = 0;
        for _ in 0..max_rounds {
            let before = self.stats.messages;
            self.round(&mut node_step);
            executed += 1;
            if self.stats.messages == before {
                break;
            }
        }
        executed
    }

    /// Charges `rounds` silent rounds (no messages), used by algorithms that
    /// need to account for idle synchronization time.
    pub fn charge_rounds(&mut self, rounds: usize) {
        self.stats.rounds += rounds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generators, vid};

    #[test]
    fn flooding_reaches_everyone_in_diameter_rounds() {
        let g = generators::path(6);
        let mut net: Network<'_, u32> = Network::new(&g, Model::congest());
        let mut best: Vec<u32> = (0..6).map(|v| v as u32 + 10).collect();
        best[3] = 0; // the "source"
        for _ in 0..5 {
            net.round(|v, inbox| {
                for m in inbox {
                    best[v.index()] = best[v.index()].min(m.payload);
                }
                let mine = best[v.index()];
                g.neighbors(v)
                    .map(|(n, _)| Outgoing::unit(n, mine))
                    .collect()
            });
        }
        assert!(best.iter().all(|&b| b == 0));
        assert_eq!(net.stats().rounds, 5);
        assert_eq!(net.congestion_violations(), 0);
        assert_eq!(net.stats().max_words_per_edge_round, 1);
    }

    #[test]
    fn messages_to_non_neighbours_panic() {
        let g = generators::path(3);
        let mut net: Network<'_, u32> = Network::new(&g, Model::Local);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.round(|v, _| {
                if v == vid(0) {
                    vec![Outgoing::unit(vid(2), 1)]
                } else {
                    vec![]
                }
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn congestion_violations_are_detected() {
        let g = generators::path(2);
        let mut net: Network<'_, u32> = Network::new(&g, Model::congest());
        net.round(|v, _| {
            if v == vid(0) {
                // A single 100-word message clearly exceeds the CONGEST budget.
                vec![Outgoing::sized(vid(1), 7, 100)]
            } else {
                vec![]
            }
        });
        assert_eq!(net.congestion_violations(), 1);
        assert_eq!(net.stats().max_words_per_edge_round, 100);
        // The same message is fine in LOCAL.
        let mut net: Network<'_, u32> = Network::new(&g, Model::Local);
        net.round(|v, _| {
            if v == vid(0) {
                vec![Outgoing::sized(vid(1), 7, 100)]
            } else {
                vec![]
            }
        });
        assert_eq!(net.congestion_violations(), 0);
    }

    #[test]
    fn run_until_quiet_stops_early() {
        let g = generators::path(4);
        let mut net: Network<'_, u32> = Network::new(&g, Model::Local);
        let mut sent = false;
        let executed = net.run_until_quiet(50, |v, _| {
            if v == vid(0) && !sent {
                sent = true;
                vec![Outgoing::unit(vid(1), 1)]
            } else {
                vec![]
            }
        });
        // Round 1 sends one message; round 2 sends nothing and stops.
        assert_eq!(executed, 2);
    }

    #[test]
    fn charge_rounds_adds_idle_rounds() {
        let g = generators::path(2);
        let mut net: Network<'_, u32> = Network::new(&g, Model::Local);
        net.charge_rounds(9);
        assert_eq!(net.stats().rounds, 9);
        assert_eq!(net.stats().messages, 0);
    }

    #[test]
    fn model_word_limits() {
        assert_eq!(Model::Local.word_limit(), None);
        assert_eq!(Model::congest().word_limit(), Some(3));
        assert_eq!(
            Model::Congest {
                words_per_message: 7
            }
            .word_limit(),
            Some(7)
        );
    }

    #[test]
    fn incoming_records_sender() {
        let g = generators::path(2);
        let mut net: Network<'_, &'static str> = Network::new(&g, Model::Local);
        let mut seen = Vec::new();
        net.round(|v, _| {
            if v == vid(0) {
                vec![Outgoing::unit(vid(1), "hello")]
            } else {
                vec![]
            }
        });
        net.round(|v, inbox| {
            if v == vid(1) {
                for m in inbox {
                    seen.push((m.from, m.payload));
                }
            }
            vec![]
        });
        assert_eq!(seen, vec![(vid(0), "hello")]);
    }
}
