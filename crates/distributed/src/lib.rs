//! # ftspan-distributed
//!
//! Distributed constructions of fault-tolerant spanners from Dinitz &
//! Robelle (PODC 2020), Section 5, executed on a synchronous round-based
//! simulator of the LOCAL and CONGEST models.
//!
//! * [`runtime`] — the round engine: per-edge message delivery, round
//!   counting, and CONGEST word-budget accounting.
//! * [`decomposition`] — padded network decomposition (Theorem 11) via
//!   distributed exponential-shift clustering.
//! * [`local_ft_spanner`] — the LOCAL-model construction (Theorem 12):
//!   decompose, gather each cluster at its center, run a centralized greedy,
//!   take the union. `O(log n)` rounds, size `O(f^{1−1/k} n^{1+1/k} log n)`.
//! * [`congest_baswana_sen`] — distributed Baswana–Sen (Theorem 14),
//!   `O(k²)` rounds with `O(1)`-word messages.
//! * [`congest_ft_spanner`] — the CONGEST-model fault-tolerant construction
//!   (Theorem 15): Dinitz–Krauthgamer sampling with all Baswana–Sen
//!   iterations scheduled in parallel.
//!
//! ## Example
//!
//! ```
//! use ftspan::SpannerParams;
//! use ftspan_distributed::{congest_ft_spanner, local_ft_spanner};
//! use ftspan_graph::generators;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let g = generators::connected_gnp(50, 0.15, &mut rng);
//! let params = SpannerParams::vertex(2, 1);
//!
//! let local = local_ft_spanner(&g, params, &mut rng);
//! let congest = congest_ft_spanner(&g, params, &mut rng);
//! assert!(local.spanner.edge_count() <= g.edge_count());
//! assert!(congest.result.spanner.edge_count() <= g.edge_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod congest_bs;
pub mod congest_ft;
pub mod decomposition;
pub mod local_spanner;
pub mod metrics;
pub mod parallel;
pub mod runtime;

pub use congest_bs::congest_baswana_sen;
pub use congest_ft::{
    congest_ft_spanner, congest_ft_spanner_with, CongestFtOptions, CongestFtResult,
};
pub use decomposition::{padded_decomposition, Decomposition, DecompositionOptions, Partition};
pub use local_spanner::{
    local_ft_spanner, local_ft_spanner_with, ClusterAlgorithm, DistributedSpannerResult,
    LocalSpannerOptions,
};
pub use metrics::RoundStats;
pub use parallel::{
    decomposed_parallel_spanner, decomposed_parallel_spanner_with, ParallelBuildOutcome,
    ParallelBuildPlan,
};
