//! Offline stub of [`serde`](https://crates.io/crates/serde) for this
//! workspace.
//!
//! The ftspan crates gate serialization support behind an optional `serde`
//! feature. The build environment has no access to crates.io, so this stub
//! keeps that feature *compilable*: it provides the [`Serialize`] /
//! [`Deserialize`] marker traits plus no-op derive macros, which is exactly
//! what `#[cfg_attr(feature = "serde", derive(serde::Serialize,
//! serde::Deserialize))]` needs to expand. No wire format is implemented;
//! swapping in real serde later requires no changes to the ftspan crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stub of `serde::Serialize` (no serializer plumbing).
pub trait Serialize {}

/// Marker stub of `serde::Deserialize` (no deserializer plumbing).
pub trait Deserialize {}

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize, Debug, PartialEq)]
    struct Probe {
        x: u32,
    }

    #[derive(super::Serialize, super::Deserialize, Debug, PartialEq)]
    enum Mode {
        A,
        B(u8),
    }

    #[test]
    fn derives_expand_to_nothing_and_types_still_work() {
        assert_eq!(Probe { x: 1 }, Probe { x: 1 });
        assert_ne!(Mode::A, Mode::B(2));
    }
}
