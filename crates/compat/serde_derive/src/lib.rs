//! No-op derive macros backing the offline `serde` stub: deriving
//! `Serialize` / `Deserialize` expands to nothing, which keeps the
//! `#[cfg_attr(feature = "serde", ...)]` attributes in the ftspan crates
//! compilable without the real serde available.

use proc_macro::TokenStream;

/// Expands to nothing (stub of `serde_derive::Serialize`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing (stub of `serde_derive::Deserialize`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
