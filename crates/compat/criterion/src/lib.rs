//! Offline, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a miniature harness with the same surface the benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurements are real (monotonic-clock timing of warm-up plus
//! `sample_size` samples, reporting min / mean / max per iteration) but the
//! statistical machinery of upstream Criterion (outlier analysis, HTML
//! reports, regression detection) is intentionally absent. Passing `--test`
//! or setting `CRITERION_SMOKE=1` runs every benchmark closure exactly once,
//! which is what CI uses to keep bench targets honest without paying for a
//! measurement run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness entry point, mirroring `criterion::Criterion`.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_SMOKE").is_some();
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(1),
            smoke,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before sampling starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target duration of the measurement phase.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        run_one(self, &label, None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and throughput unit.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput unit reported for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, self.throughput, &mut f);
        self
    }

    /// Benchmarks a closure that receives a shared input reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, self.throughput, &mut |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "benchmark"),
        }
    }
}

/// Throughput unit attached to a benchmark's report line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to every benchmark closure; [`Bencher::iter`] times the hot loop.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    smoke: bool,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, recording one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            black_box(f());
            self.samples.push(Duration::ZERO);
            return;
        }
        // Warm-up: run until the warm-up budget elapses (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(
    criterion: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        smoke: criterion.smoke,
        warm_up_time: criterion.warm_up_time,
        sample_size: criterion.sample_size,
    };
    f(&mut bencher);
    if criterion.smoke {
        println!("{label}: smoke ok");
        return;
    }
    if bencher.samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = *bencher.samples.iter().min().expect("non-empty");
    let max = *bencher.samples.iter().max().expect("non-empty");
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  thrpt: {:.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  thrpt: {:.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{label}: time [{} {} {}]{rate}",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a group of benchmark target functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_criterion() -> Criterion {
        Criterion {
            smoke: true,
            ..Criterion::default()
        }
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut c = smoke_criterion();
        let mut ran = 0u32;
        c.bench_function("touch", |b| b.iter(|| ran += 1));
        assert!(ran >= 1);
    }

    #[test]
    fn group_bench_with_input_passes_input() {
        let mut c = smoke_criterion();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(3));
        let data = vec![1, 2, 3];
        group.bench_with_input(BenchmarkId::from_parameter(3), &data, |b, d| {
            b.iter(|| d.iter().sum::<i32>())
        });
        group.finish();
    }

    #[test]
    fn real_measurement_records_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.smoke = false;
        let mut count = 0u64;
        c.bench_function("count", |b| b.iter(|| count += 1));
        // Warm-up at least once plus 3 samples.
        assert!(count >= 4);
    }

    #[test]
    fn benchmark_id_display_forms() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(10)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains(" s"));
    }
}
