//! Sequence helpers, mirroring `rand::seq::SliceRandom`.

use crate::{Rng, RngCore};

/// Random operations on slices (the subset of `rand::seq::SliceRandom` used
/// by this workspace).
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` for an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_index(rng, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_index(rng, self.len())])
        }
    }
}

#[inline]
fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
    ((rng.next_u64() as u128).wrapping_mul(bound as u128) >> 64) as usize
}
