//! Distributions, mirroring the tiny slice of `rand::distributions` the
//! workspace uses: the [`Standard`] distribution behind [`crate::Rng::gen`].

use crate::RngCore;

/// Types that can produce samples of `T` from a random bit source.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over a type's natural sample space
/// (`[0, 1)` for floats, all values for integers, fair coin for `bool`).
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
