//! Concrete generators: [`StdRng`] (xoshiro256++) and [`ThreadRng`].

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Mirrors `rand::rngs::StdRng` in role (not in output stream — upstream
/// `StdRng` is ChaCha-based). Every use in this workspace seeds it through
/// [`SeedableRng::seed_from_u64`], so only determinism and statistical
/// quality matter, not stream compatibility.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ by Blackman & Vigna (public domain reference design).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // The all-zero state is the one forbidden state of xoshiro.
        let s = if s == [0, 0, 0, 0] { [1, 2, 3, 4] } else { s };
        Self { s }
    }
}

/// The generator returned by [`crate::thread_rng`]; a thin wrapper over
/// [`StdRng`] with a per-call stream.
#[derive(Clone, Debug)]
pub struct ThreadRng {
    inner: StdRng,
}

impl ThreadRng {
    pub(crate) fn new(inner: StdRng) -> Self {
        Self { inner }
    }
}

impl RngCore for ThreadRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
