//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 line) for this workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of the `rand` API its crates actually use:
//!
//! * [`Rng`] with `gen`, `gen_range`, `gen_bool`
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`]
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`]
//! * [`thread_rng`]
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically solid for the randomized graph workloads and
//! sampled verification in this repository. It is **not** a cryptographic
//! generator, and [`thread_rng`] is deterministic per process (each call
//! draws a fresh stream from a global SplitMix64 sequence) so experiments
//! stay reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::{Distribution, Standard};

/// A low-level source of randomness: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled from uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Multiply-shift mapping of 64 random bits onto the span; the
                // bias is at most span / 2^64, far below anything observable
                // in this workspace's workloads.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as u128;
                (self.start as u128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as u128;
                (start as u128 + hi) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let sample = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Guard against rounding up to the exclusive endpoint.
        if sample < self.end {
            sample
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let sample = self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32;
        if sample < self.end {
            sample
        } else {
            self.start
        }
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (53-bit precision).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// SplitMix64 step, used for seeding and for the [`thread_rng`] stream.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Returns a deterministic per-call generator, mirroring `rand::thread_rng`.
///
/// Unlike upstream `rand` this is **deterministic**: each call advances a
/// global SplitMix64 sequence and seeds a fresh [`rngs::StdRng`] stream from
/// it, so repeated program runs see identical randomness. That is a feature
/// for this workspace, where every experiment must be reproducible.
#[must_use]
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x5EED_CAFE_F00D_0001);
    let mut s = COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    rngs::ThreadRng::new(rngs::StdRng::seed_from_u64(splitmix64(&mut s)))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(1.5..2.5);
            assert!((1.5..2.5).contains(&y));
            let z: u32 = rng.gen_range(0..=4);
            assert!(z <= 4);
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(!StdRng::seed_from_u64(0).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(0).gen_bool(1.0));
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // Overwhelmingly likely to actually move something.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_picks_existing_elements() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn thread_rng_streams_differ_between_calls() {
        let mut a = thread_rng();
        let mut b = thread_rng();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn works_through_mut_references_and_dyn_bounds() {
        fn sum_three<R: Rng + ?Sized>(rng: &mut R) -> usize {
            (0..3).map(|_| rng.gen_range(0..10usize)).sum()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let s = sum_three(&mut rng);
        assert!(s <= 27);
    }
}
