//! The case loop and its configuration, mirroring `proptest::test_runner`.

use std::fmt::Debug;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// Configuration for a [`TestRunner`], mirroring
/// `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Maximum number of rejected (assumption-failed) cases tolerated before
    /// the property errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_global_rejects: 1024,
        }
    }
}

impl ProptestConfig {
    /// A configuration running the given number of cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property was falsified with the given message.
    Fail(String),
    /// The case was discarded because an assumption did not hold.
    Reject(String),
}

impl TestCaseError {
    /// A falsification with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A discarded case with the given message.
    #[must_use]
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// Runs a property over many generated cases.
///
/// Generation is deterministic: the RNG is seeded from a fixed constant (or
/// the `PROPTEST_SEED` environment variable when set), so a failure printed
/// by CI reproduces locally without a persistence file.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner for the given configuration.
    #[must_use]
    pub fn new(config: ProptestConfig) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x70726F70_74657374); // "proptest"
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The runner's RNG, used by strategies.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Runs `test` against `config.cases` generated values.
    ///
    /// # Panics
    ///
    /// Panics with the failing input when the property is falsified, or when
    /// too many cases are rejected by `prop_assume!`.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        S::Value: Debug,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases {
            let value = strategy.new_value(self);
            let shown = format!("{value:?}");
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= self.config.max_global_rejects,
                        "proptest: too many rejected cases ({rejected}); \
                         weaken the prop_assume! or widen the strategy"
                    );
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "proptest: property falsified after {passed} passing case(s)\n\
                         {message}\n\
                         failing input: {shown}"
                    );
                }
            }
        }
    }
}
