//! Offline, API-compatible subset of the
//! [`proptest`](https://crates.io/crates/proptest) property-testing
//! framework.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the slice of the proptest API its tests use: the [`proptest!`] macro with
//! `#![proptest_config(...)]`, range and tuple [`Strategy`] values,
//! [`Strategy::prop_map`], and the `prop_assert*` macros.
//!
//! Differences from upstream: failing cases are **not shrunk** (the failing
//! input is printed as-is), and generation is deterministic from a fixed
//! seed so test failures always reproduce. Both trade-offs favour a small,
//! dependable harness over exploratory ergonomics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// Supports the block form with an optional `#![proptest_config(expr)]`
/// inner attribute followed by any number of test functions whose arguments
/// use `pattern in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; parses one test function at a
/// time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let strategy = ($($strat,)+);
            runner.run(&strategy, |($($arg,)+)| {
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, reporting the failing
/// input instead of panicking blindly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left != right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Discards the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (usize, usize)> {
        (1usize..50, 1usize..50).prop_map(|(a, b)| (a.min(b), a.max(b)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5usize..12, y in 0.25f64..0.75) {
            prop_assert!((5..12).contains(&x));
            prop_assert!((0.25..0.75).contains(&y), "y was {}", y);
        }

        #[test]
        fn prop_map_composes(pair in pair_strategy()) {
            let (lo, hi) = pair;
            prop_assert!(lo <= hi);
            prop_assert_eq!(lo.min(hi), lo);
            prop_assert_ne!(hi + 1, lo);
        }

        #[test]
        fn assumptions_discard_cases(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failing_property_panics_with_input() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(16));
        runner.run(&(0usize..10,), |(x,)| {
            prop_assert!(x < 3, "x too large");
            Ok(())
        });
    }

    #[test]
    fn generation_is_deterministic() {
        let collect = || {
            let mut out = Vec::new();
            let mut runner = TestRunner::new(ProptestConfig::with_cases(10));
            runner.run(&(0usize..1000,), |(x,)| {
                out.push(x);
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }
}
