//! Value-generation strategies, mirroring `proptest::strategy`.

use rand::Rng;

use crate::test_runner::TestRunner;

/// A recipe for generating values of an associated type, mirroring
/// `proptest::strategy::Strategy` (without shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value using the runner's RNG.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// A strategy that always yields a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, runner: &mut TestRunner) -> f64 {
        runner.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
