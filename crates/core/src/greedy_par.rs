//! Parallel modified greedy construction: speculative batch decisions on
//! scoped threads, committed sequentially so the output is **bit-identical**
//! to [`poly_greedy_spanner_with`](crate::poly_greedy_spanner_with).
//!
//! The greedy sweep looks inherently sequential — every LBC decision runs
//! against the spanner built so far — but the decisions are *local*: a
//! decision for edge `{u, v}` with hop bound `t = 2k − 1` explores only the
//! spanner subgraph within `t` hops of `u`. Since the spanner is a subgraph
//! of the input, the input-graph ball `B_G(u, t)` contains every vertex any
//! such search can touch. That gives a sound speculation rule:
//!
//! 1. **Decide** a batch of consecutive edges (in the exact sequential
//!    order) in parallel against the spanner *frozen at batch start*. The
//!    threads pull small contiguous sub-chunks off a shared atomic cursor,
//!    so an expensive accept-like search on one edge does not stall the
//!    whole batch behind one straggler; each thread keeps a persistent
//!    [`LbcScratch`].
//! 2. **Commit** the batch in order on one thread. A speculative decision is
//!    kept iff no edge accepted earlier in the batch has an endpoint within
//!    hop distance `t − 1` of either endpoint *in the overlay graph*
//!    `P = (spanner at batch start) ∪ (this batch's speculative accepts)` —
//!    otherwise the decision is recomputed against the live spanner.
//!    Accepted edges mark the balls `B_P(u, t − 1) ∪ B_P(v, t − 1)` dirty
//!    (radius `t − 1` suffices: a hop-`t` search scans edges only from
//!    vertices it expands, which sit at depth ≤ `t − 1`).
//!
//! Marking over `P` rather than the input graph is what makes commit cheap
//! on dense inputs: spanner balls are a fraction of input-graph balls, and
//! `P` is still a sound horizon because every spanner any in-batch search
//! can see lies between the frozen spanner and `P` — provided speculation
//! holds. A recomputed decision that flips reject → accept inserts an edge
//! *outside* `P`, so that commit conservatively recomputes the rest of its
//! batch (`prediction_flushes`). A flip accept → reject only shrinks the
//! live spanner below `P`, which over-marks and stays sound.
//!
//! If the balls miss both endpoints, the subgraph explored by the
//! speculative search equals the one the sequential sweep would explore —
//! same BFS discovery order, same paths, same fault-set rounds — so the
//! decision *and* its certificate are bit-identical, for any thread count
//! and batch size. One wrinkle: [`Graph::add_edge`] may self-compact, which
//! reorders every adjacency list (not just the new edge's endpoints); a
//! commit that triggers compaction therefore conservatively recomputes the
//! rest of its batch. Compactions are geometrically spaced, so the cost is
//! negligible. Once a batch is flushed for either reason, marking stops —
//! the dirty set is irrelevant when everything left recomputes anyway.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use ftspan_graph::{EdgeId, Graph, VertexId};

use crate::greedy_poly::{poly_greedy_spanner_with, EdgeOrder, PolyGreedyOptions};
use crate::lbc::{decide_lbc_with, LbcDecision, LbcScratch};
use crate::stats::{EdgeCertificate, SpannerResult, SpannerStats};
use crate::SpannerParams;

/// Options for [`par_poly_greedy_spanner_with`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParallelGreedyOptions {
    /// Worker threads for the speculative decision phase. `0` means
    /// [`std::thread::available_parallelism`]; `1` falls back to the
    /// sequential sweep (same output either way).
    pub threads: usize,
    /// Edges decided speculatively per batch. `0` (the default) adapts the
    /// batch size to the observed speculation hit rate, growing it while
    /// speculation lands and shrinking it when dirty-ball conflicts
    /// dominate. Output is independent of this knob; it only trades
    /// conflict rate against synchronization.
    pub batch_size: usize,
    /// The underlying greedy options (edge order, certificate collection).
    pub base: PolyGreedyOptions,
}

impl ParallelGreedyOptions {
    /// Options for a given thread count with defaults elsewhere.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }
}

/// Counters describing how a parallel sweep resolved its speculation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpeculationStats {
    /// Decisions taken from the parallel phase unchanged.
    pub speculative_hits: usize,
    /// Decisions recomputed at commit time because a batch-local accepted
    /// edge landed within the hop ball (or a compaction reordered layout).
    pub recomputed: usize,
    /// Batches whose tail was recomputed due to a self-compaction.
    pub compaction_flushes: usize,
    /// Batches whose tail was recomputed because a recomputed decision
    /// flipped reject → accept, landing an edge outside the speculative
    /// overlay graph the dirty marks were computed over.
    pub prediction_flushes: usize,
    /// Wall-clock time of the parallel decision phase (dispatch to last
    /// worker done), summed over batches.
    pub phase1_wall: std::time::Duration,
    /// Total busy time summed across workers inside the decision phase.
    /// `decide_busy / phase1_wall` is the effective parallelism the host
    /// actually delivered; on a single-core box the two are equal.
    pub decide_busy: std::time::Duration,
    /// Wall-clock time of the sequential commit phase, summed over batches.
    pub commit_wall: std::time::Duration,
}

/// Builds the modified greedy spanner on multiple threads; the resulting
/// spanner and certificates are bit-identical to
/// [`poly_greedy_spanner_with`](crate::poly_greedy_spanner_with) with the
/// same [`PolyGreedyOptions`], for every thread count and batch size.
///
/// # Panics
///
/// Panics if a custom edge order references an out-of-range edge.
#[must_use]
pub fn par_poly_greedy_spanner_with(
    graph: &Graph,
    params: SpannerParams,
    options: &ParallelGreedyOptions,
) -> SpannerResult {
    let (result, _) = par_poly_greedy_spanner_traced(graph, params, options);
    result
}

/// Like [`par_poly_greedy_spanner_with`], additionally returning the
/// speculation counters (used by the scale experiments to report conflict
/// rates).
#[must_use]
pub fn par_poly_greedy_spanner_traced(
    graph: &Graph,
    params: SpannerParams,
    options: &ParallelGreedyOptions,
) -> (SpannerResult, SpeculationStats) {
    let threads = if options.threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        options.threads
    };
    if threads <= 1 {
        let result = poly_greedy_spanner_with(graph, params, &options.base);
        let spec = SpeculationStats {
            recomputed: result.stats.lbc_calls,
            ..SpeculationStats::default()
        };
        return (result, spec);
    }
    let start = Instant::now();
    let order: Vec<EdgeId> = match &options.base.edge_order {
        EdgeOrder::NondecreasingWeight => graph.edge_ids_by_weight(),
        EdgeOrder::Insertion => graph.edge_ids().collect(),
        EdgeOrder::Custom(order) => order.clone(),
    };
    let t = params.stretch();
    let alpha = params.f();
    let model = params.fault_model();
    // With `batch_size == 0` the batch size adapts to the observed hit
    // rate: dirty coverage per batch scales with accepts × ball size, so no
    // static choice fits both a 10⁴-node grid and a 10⁶-node geometric
    // graph. Adaptation is driven purely by deterministic quantities, so
    // the output stays independent of it.
    let adaptive = options.batch_size == 0;
    let mut batch = if adaptive {
        256
    } else {
        options.batch_size.max(1)
    };
    let min_batch = (threads * 4).max(32);
    let max_batch = 8192;

    let mut spanner_arc = Arc::new(Graph::empty_like(graph));
    let mut certificates = Vec::new();
    let mut stats = SpannerStats {
        algorithm: "poly-greedy-par",
        input_vertices: graph.vertex_count(),
        input_edges: graph.edge_count(),
        ..SpannerStats::default()
    };
    let mut spec = SpeculationStats::default();

    let mut commit_scratch = LbcScratch::new();
    let mut decisions: Vec<Option<LbcDecision>> = Vec::new();
    let mut overlay: Vec<(VertexId, VertexId)> = Vec::new();
    let mut marks = DirtyMarks::new(graph.vertex_count());
    let bfs_runs = AtomicUsize::new(0);
    let busy_ns = AtomicUsize::new(0);
    let cursor = AtomicUsize::new(0);
    let board = JobBoard::default();
    let order_ref: &[EdgeId] = &order;

    let total = order_ref.len();
    std::thread::scope(|scope| {
        // The persistent worker pool: spawning threads per batch costs more
        // than an entire batch of decisions, so the pool parks on the job
        // board and each batch is two condvar round-trips. Workers pull
        // contiguous sub-chunks off the shared cursor so one expensive
        // accept-like search cannot straggle the whole batch; within a
        // sub-chunk the persistent scratch keeps sharing same-source
        // first-round trees.
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = LbcScratch::new();
                let mut local: Vec<(usize, LbcDecision)> = Vec::new();
                let mut seen = 0u64;
                loop {
                    let Some((frozen, hi, stride)) = board.next_job(&mut seen) else {
                        return;
                    };
                    let t0 = Instant::now();
                    let mut runs = 0usize;
                    loop {
                        let lo = cursor.fetch_add(stride, Ordering::Relaxed);
                        if lo >= hi {
                            break;
                        }
                        let end = (lo + stride).min(hi);
                        for (i, &edge_id) in order_ref[lo..end].iter().enumerate() {
                            let (u, v) = graph.edge(edge_id).endpoints();
                            let (decision, lbc_stats) =
                                decide_lbc_with(&mut scratch, &frozen, model, u, v, t, alpha);
                            runs += lbc_stats.bfs_runs;
                            local.push((lo + i, decision));
                        }
                    }
                    // The commit phase takes exclusive ownership of the
                    // spanner, so the clone must be gone before this worker
                    // reports done.
                    drop(frozen);
                    bfs_runs.fetch_add(runs, Ordering::Relaxed);
                    busy_ns.fetch_add(t0.elapsed().as_nanos() as usize, Ordering::Relaxed);
                    board.finish_job(&mut local);
                }
            });
        }

        let mut pos = 0usize;
        while pos < total {
            let hi = (pos + batch).min(total);
            let chunk = &order_ref[pos..hi];
            // Phase 1: speculative decisions against the spanner frozen at
            // batch start, fanned out over the pool.
            decisions.clear();
            decisions.resize(chunk.len(), None);
            let stride = chunk.len().div_ceil(threads * 4).clamp(8, 512);
            cursor.store(pos, Ordering::Relaxed);
            let p1 = Instant::now();
            board.dispatch(Arc::clone(&spanner_arc), hi, stride, threads);
            board.wait_idle(|i, decision| decisions[i - pos] = Some(decision));
            spec.phase1_wall += p1.elapsed();

            // The speculative-accept overlay: together with the live
            // spanner it forms `P`, the superset of every spanner an
            // in-batch search can see while speculation holds. Sorted so
            // ball marking can binary search a vertex's overlay neighbors.
            overlay.clear();
            for (i, slot) in decisions.iter().enumerate() {
                if matches!(slot, Some(LbcDecision::Yes(_))) {
                    let (u, v) = graph.edge(chunk[i]).endpoints();
                    overlay.push((u, v));
                    overlay.push((v, u));
                }
            }
            overlay.sort_unstable();

            // Phase 2: sequential commit in batch order. All workers are
            // parked on the job board, so the spanner is exclusively ours.
            let spanner = Arc::get_mut(&mut spanner_arc).expect("workers are idle between batches");
            let c0 = Instant::now();
            marks.next_epoch();
            let mut flushed = false;
            let hits_before = spec.speculative_hits;
            for (i, &edge_id) in chunk.iter().enumerate() {
                let edge = graph.edge(edge_id);
                let (u, v) = edge.endpoints();
                stats.lbc_calls += 1;
                let clean = !flushed && !marks.is_dirty(u) && !marks.is_dirty(v);
                let decision = if clean {
                    spec.speculative_hits += 1;
                    decisions[i].take().expect("phase 1 fills every slot")
                } else {
                    spec.recomputed += 1;
                    let (decision, lbc_stats) =
                        decide_lbc_with(&mut commit_scratch, spanner, model, u, v, t, alpha);
                    stats.bfs_runs += lbc_stats.bfs_runs;
                    // A reject → accept flip inserts an edge outside `P`:
                    // the dirty marks no longer bound later searches, so
                    // the rest of the batch must recompute.
                    if !flushed
                        && matches!(decision, LbcDecision::Yes(_))
                        && !matches!(decisions[i], Some(LbcDecision::Yes(_)))
                    {
                        flushed = true;
                        spec.prediction_flushes += 1;
                    }
                    decision
                };
                if let LbcDecision::Yes(cut) = decision {
                    let spanner_edge = spanner.add_edge(u.index(), v.index(), edge.weight());
                    if options.base.collect_certificates {
                        certificates.push(EdgeCertificate {
                            input_edge: edge_id,
                            spanner_edge,
                            cut,
                        });
                    }
                    // `add_edge` leaves the graph compacted only when it
                    // just self-compacted — which reorders every adjacency
                    // list, so speculation against the old layout is no
                    // longer exact.
                    if spanner.is_compacted() && !flushed {
                        flushed = true;
                        spec.compaction_flushes += 1;
                    }
                    if !flushed {
                        // The search for a later edge scans an edge only
                        // from a vertex it *expands* — depth ≤ t − 1 — so
                        // radius t − 1 around the new endpoints already
                        // covers every search the accept can influence.
                        marks.mark_balls(spanner, &overlay, u, v, t.saturating_sub(1));
                    }
                }
            }
            spec.commit_wall += c0.elapsed();

            if adaptive {
                let hits = spec.speculative_hits - hits_before;
                if hits * 2 < chunk.len() {
                    batch = (batch / 2).max(min_batch);
                } else if hits * 10 >= chunk.len() * 9 {
                    batch = (batch * 2).min(max_batch);
                }
            }
            pos = hi;
        }
        board.shutdown();
    });
    spec.decide_busy = std::time::Duration::from_nanos(busy_ns.load(Ordering::Relaxed) as u64);

    stats.bfs_runs += bfs_runs.load(Ordering::Relaxed);
    let spanner = Arc::try_unwrap(spanner_arc).expect("the worker pool has shut down");
    stats.spanner_edges = spanner.edge_count();
    stats.elapsed = start.elapsed();
    (
        SpannerResult {
            spanner,
            params,
            stats,
            certificates,
        },
        spec,
    )
}

/// The synchronization point between the commit thread and the speculative
/// worker pool: one job (a frozen spanner and an edge range) per batch.
#[derive(Debug, Default)]
struct JobBoard {
    state: Mutex<JobState>,
    /// Signalled by [`JobBoard::dispatch`] when a new job is posted (and on
    /// shutdown).
    go: Condvar,
    /// Signalled by the last worker to finish the current job.
    idle: Condvar,
}

#[derive(Debug, Default)]
struct JobState {
    /// Monotone job counter; workers track the last value they served.
    seq: u64,
    /// The spanner frozen at batch start, cloned into each worker. `None`
    /// between batches so the commit phase holds the only strong reference.
    spanner: Option<Arc<Graph>>,
    /// One-past-the-end edge-order index of the current batch.
    hi: usize,
    /// Sub-chunk length workers pull off the shared cursor.
    stride: usize,
    /// Workers that finished the current job.
    done: usize,
    /// Workers the current job was dispatched to.
    workers: usize,
    /// Tells parked workers to exit.
    shutdown: bool,
    /// Per-batch decision slots flushed by finishing workers, keyed by
    /// edge-order index.
    results: Vec<(usize, LbcDecision)>,
}

impl JobBoard {
    /// Parks until a job newer than `seen` is posted; returns its frozen
    /// spanner, edge-range end, and stride, or `None` on shutdown.
    fn next_job(&self, seen: &mut u64) -> Option<(Arc<Graph>, usize, usize)> {
        let mut st = self.state.lock().expect("job board poisoned");
        loop {
            if st.shutdown {
                return None;
            }
            if st.seq > *seen {
                break;
            }
            st = self.go.wait(st).expect("job board poisoned");
        }
        *seen = st.seq;
        let frozen = Arc::clone(st.spanner.as_ref().expect("posted job carries a spanner"));
        Some((frozen, st.hi, st.stride))
    }

    /// Reports this worker's results for the current job; the last worker
    /// to finish wakes the commit thread.
    fn finish_job(&self, results: &mut Vec<(usize, LbcDecision)>) {
        let mut st = self.state.lock().expect("job board poisoned");
        st.results.append(results);
        st.done += 1;
        if st.done == st.workers {
            self.idle.notify_one();
        }
    }

    /// Posts a new job to all workers.
    fn dispatch(&self, frozen: Arc<Graph>, hi: usize, stride: usize, workers: usize) {
        let mut st = self.state.lock().expect("job board poisoned");
        st.seq += 1;
        st.spanner = Some(frozen);
        st.hi = hi;
        st.stride = stride;
        st.done = 0;
        st.workers = workers;
        self.go.notify_all();
    }

    /// Blocks until every worker finished the current job, dropping the
    /// board's spanner reference and draining the decisions into `sink`.
    fn wait_idle(&self, mut sink: impl FnMut(usize, LbcDecision)) {
        let mut st = self.state.lock().expect("job board poisoned");
        while st.done < st.workers {
            st = self.idle.wait(st).expect("job board poisoned");
        }
        st.spanner = None;
        for (i, decision) in st.results.drain(..) {
            sink(i, decision);
        }
    }

    /// Wakes every parked worker and tells it to exit.
    fn shutdown(&self) {
        let mut st = self.state.lock().expect("job board poisoned");
        st.shutdown = true;
        self.go.notify_all();
    }
}

/// Epoch-stamped dirty marks over the overlay graph `P` (live spanner plus
/// the batch's speculative accepts): vertices within hop distance `t − 1`
/// of an endpoint of an edge accepted in the current batch.
///
/// `P` is the sound marking horizon: any in-batch live search runs on a
/// spanner sandwiched between the frozen spanner and `P` (while speculation
/// holds), so a search whose `P`-ball misses every accepted endpoint cannot
/// traverse an edge the frozen spanner lacked. Radius `t − 1` suffices
/// because a hop-`t`-bounded search only scans edges from vertices it
/// expands, which sit at depth ≤ `t − 1`. `P`-balls are far smaller than
/// input-graph balls on dense inputs, which keeps the sequential commit
/// phase cheap.
///
/// Cleared in `O(1)` per batch by bumping the epoch. Marking re-relaxes a
/// vertex whenever a later ball reaches it at a *smaller* depth, so
/// frontier vertices of an earlier ball still expand when a new accepted
/// edge lands next to them — without that, overlapping balls would
/// under-mark and break the bit-identity argument.
#[derive(Debug)]
struct DirtyMarks {
    epoch: u64,
    stamp: Vec<u64>,
    depth: Vec<u32>,
    queue: VecDeque<VertexId>,
}

impl DirtyMarks {
    fn new(n: usize) -> Self {
        Self {
            epoch: 0,
            stamp: vec![0; n],
            depth: vec![0; n],
            queue: VecDeque::new(),
        }
    }

    fn next_epoch(&mut self) {
        self.epoch += 1;
    }

    #[inline]
    fn is_dirty(&self, v: VertexId) -> bool {
        self.stamp[v.index()] == self.epoch
    }

    #[inline]
    fn relax(&mut self, y: VertexId, d: u32) {
        if self.stamp[y.index()] != self.epoch || self.depth[y.index()] > d {
            self.stamp[y.index()] = self.epoch;
            self.depth[y.index()] = d;
            self.queue.push_back(y);
        }
    }

    /// Marks `B_P(u, t) ∪ B_P(v, t)` where `P` is the live spanner plus the
    /// sorted bidirectional `overlay` of speculative-accept edges.
    fn mark_balls(
        &mut self,
        spanner: &Graph,
        overlay: &[(VertexId, VertexId)],
        u: VertexId,
        v: VertexId,
        max_hops: u32,
    ) {
        self.queue.clear();
        for s in [u, v] {
            if self.stamp[s.index()] != self.epoch || self.depth[s.index()] > 0 {
                self.stamp[s.index()] = self.epoch;
                self.depth[s.index()] = 0;
                self.queue.push_back(s);
            }
        }
        while let Some(x) = self.queue.pop_front() {
            let dx = self.depth[x.index()];
            if dx >= max_hops {
                continue;
            }
            for (y, _) in spanner.neighbors(x) {
                self.relax(y, dx + 1);
            }
            let lo = overlay.partition_point(|&(a, _)| a < x);
            for &(_, y) in overlay[lo..].iter().take_while(|&&(a, _)| a == x) {
                self.relax(y, dx + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly_greedy_spanner;
    use ftspan_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_bit_identical(graph: &Graph, params: SpannerParams, options: &ParallelGreedyOptions) {
        let reference = poly_greedy_spanner_with(graph, params, &options.base);
        let parallel = par_poly_greedy_spanner_with(graph, params, options);
        assert_eq!(
            parallel.spanner.edge_count(),
            reference.spanner.edge_count(),
            "edge counts diverged"
        );
        for (e, want) in reference.spanner.edges() {
            let got = parallel.spanner.edge(e);
            assert_eq!(got.endpoints(), want.endpoints(), "edge {e}");
            assert_eq!(
                got.weight().to_bits(),
                want.weight().to_bits(),
                "weight of edge {e}"
            );
        }
        assert_eq!(parallel.certificates.len(), reference.certificates.len());
        for (got, want) in parallel.certificates.iter().zip(&reference.certificates) {
            assert_eq!(got.input_edge, want.input_edge);
            assert_eq!(got.spanner_edge, want.spanner_edge);
            assert_eq!(got.cut, want.cut);
        }
    }

    #[test]
    fn parallel_output_is_bit_identical_across_thread_and_batch_counts() {
        for seed in [11u64, 12, 13] {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::connected_gnp(90, 0.12, &mut rng);
            for threads in [2usize, 4, 8] {
                for batch in [1usize, 7, 64, 1024] {
                    let options = ParallelGreedyOptions {
                        threads,
                        batch_size: batch,
                        base: PolyGreedyOptions {
                            collect_certificates: true,
                            ..PolyGreedyOptions::default()
                        },
                    };
                    assert_bit_identical(&g, SpannerParams::vertex(2, 1), &options);
                }
            }
        }
    }

    #[test]
    fn parallel_output_matches_on_weighted_and_edge_fault_inputs() {
        let mut rng = StdRng::seed_from_u64(21);
        let base = generators::connected_gnp(70, 0.15, &mut rng);
        let weighted = generators::with_random_weights(&base, 1.0, 9.0, &mut rng);
        let options = ParallelGreedyOptions {
            threads: 4,
            batch_size: 32,
            base: PolyGreedyOptions {
                collect_certificates: true,
                ..PolyGreedyOptions::default()
            },
        };
        assert_bit_identical(&weighted, SpannerParams::vertex(2, 2), &options);
        assert_bit_identical(&base, SpannerParams::edge(2, 1), &options);
        assert_bit_identical(&weighted, SpannerParams::vertex(3, 1), &options);
    }

    #[test]
    fn parallel_output_matches_across_many_structured_families() {
        let families = [
            generators::grid(9, 9),
            generators::ring_of_cliques(5, 6),
            generators::hypercube(6),
            generators::barabasi_albert(80, 3, &mut StdRng::seed_from_u64(31)),
        ];
        let options = ParallelGreedyOptions::with_threads(3);
        for g in &families {
            assert_bit_identical(g, SpannerParams::vertex(2, 1), &options);
        }
    }

    #[test]
    fn single_thread_request_falls_back_to_the_sequential_sweep() {
        let g = generators::complete(30);
        let params = SpannerParams::vertex(2, 1);
        let (result, spec) =
            par_poly_greedy_spanner_traced(&g, params, &ParallelGreedyOptions::with_threads(1));
        let reference = poly_greedy_spanner(&g, params);
        assert_eq!(result.spanner.edge_count(), reference.spanner.edge_count());
        assert_eq!(spec.speculative_hits, 0);
        assert_eq!(spec.recomputed, g.edge_count());
    }

    #[test]
    fn speculation_counters_add_up() {
        let mut rng = StdRng::seed_from_u64(41);
        let g = generators::connected_gnp(120, 0.08, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let (result, spec) =
            par_poly_greedy_spanner_traced(&g, params, &ParallelGreedyOptions::with_threads(4));
        assert_eq!(
            spec.speculative_hits + spec.recomputed,
            g.edge_count(),
            "every edge is decided exactly once at commit"
        );
        assert!(spec.speculative_hits > 0, "some speculation must land");
        assert_eq!(result.stats.lbc_calls, g.edge_count());
    }

    #[test]
    fn empty_and_tiny_graphs_are_handled() {
        let options = ParallelGreedyOptions::with_threads(4);
        let r = par_poly_greedy_spanner_with(&Graph::new(0), SpannerParams::vertex(2, 1), &options);
        assert_eq!(r.spanner.vertex_count(), 0);
        let mut g = Graph::new(2);
        g.add_unit_edge(0, 1);
        let r = par_poly_greedy_spanner_with(&g, SpannerParams::vertex(2, 1), &options);
        assert_eq!(r.spanner.edge_count(), 1);
    }
}
