//! Incremental repair hooks for online serving layers.
//!
//! An online system (see the `ftspan-oracle` crate) keeps a spanner `H` of a
//! live graph `G` while `G` loses vertices and edges to churn. Rebuilding `H`
//! from scratch after every fault wave would be correct but wasteful; this
//! module exposes the modified greedy's inner loop as a **warm-start respan**
//! primitive instead:
//!
//! * existing spanner edges are force-included, interleaved into the greedy's
//!   nondecreasing-weight sweep at their weight positions, and
//! * only *candidate* edges (typically the edges of a damaged neighbourhood)
//!   pay for an [`LBC`](crate::lbc) decision.
//!
//! Because the sweep processes edges in nondecreasing weight order and the
//! spanner only ever grows, the correctness argument of Theorems 5 and 10
//! applies verbatim: when a candidate is declined, every fault set of size at
//! most `f` leaves a `(2k − 1)`-hop path among strictly-lighter edges already
//! swept, and that witness survives in every supergraph. A respan over **all**
//! edges of `G` therefore restores the full `f`-fault-tolerant spanner
//! property no matter how damaged `H` was — the escalation path a serving
//! layer falls back to when localized repair was not enough.

use std::time::Instant;

use ftspan_graph::{EdgeId, Graph, VertexId};

use crate::lbc::{decide_lbc_with, LbcDecision, LbcScratch};
use crate::stats::{EdgeCertificate, SpannerStats};
use crate::{FaultSet, SpannerParams};

/// Pooled state for repeated repair passes: the per-wave buffers of
/// [`respan_candidates`] plus the incremental [`LbcScratch`] engine its
/// candidate decisions run on.
///
/// Without pooling, every respan call allocated a sweep-event vector and a
/// `seen` bitmap sized by the **graph's** edge count — per-wave heap churn
/// proportional to the graph, not the damage — and every candidate decision
/// allocated its own fault view and BFS buffers on top. A serving layer
/// holds one `RepairScratch` and threads it through every wave
/// ([`respan_candidates_with`]); the steady-state wave then allocates only
/// for its outputs (the rebuilt spanner and any certificates).
#[derive(Debug, Default)]
pub struct RepairScratch {
    lbc: LbcScratch,
    /// Sweep events: `(weight, class, index)` with class 0 = force-included
    /// spanner edge (index into the spanner), class 1 = candidate (index
    /// into the graph).
    events: Vec<(f64, u8, u32)>,
    /// Epoch-stamped candidate dedup marks, indexed by graph edge id.
    seen: ftspan_graph::EpochMarks,
}

impl RepairScratch {
    /// Creates an empty scratch; all buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Options for [`respan_candidates`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RepairOptions {
    /// When `true`, record the LBC certificate for every edge the repair
    /// adds, mirroring
    /// [`PolyGreedyOptions::collect_certificates`](crate::PolyGreedyOptions).
    pub collect_certificates: bool,
}

/// Result of one repair pass.
#[derive(Clone, Debug)]
pub struct RepairOutcome {
    /// The rebuilt spanner: every surviving edge of the previous spanner plus
    /// the candidate edges the greedy decided to add.
    pub spanner: Graph,
    /// Identifiers (into the input graph) of the candidate edges added.
    pub added: Vec<EdgeId>,
    /// Certificates for the added edges, when requested.
    pub certificates: Vec<EdgeCertificate>,
    /// Instrumentation counters (`lbc_calls` counts only candidate
    /// decisions — force-included spanner edges are free).
    pub stats: SpannerStats,
}

impl RepairOutcome {
    /// Number of candidate edges the repair added.
    #[must_use]
    pub fn edges_added(&self) -> usize {
        self.added.len()
    }
}

/// Re-runs the modified greedy over `spanner ∪ candidates` in nondecreasing
/// weight order, force-including the existing spanner edges and paying an
/// LBC decision only for the candidates.
///
/// `candidates` hold edge identifiers of `graph`; duplicates and candidates
/// already present in `spanner` (matched by endpoints) are skipped. The
/// existing spanner must be a subgraph of `graph` over the same vertex set
/// with matching weights — the usual invariant of every construction in this
/// crate.
///
/// The returned spanner contains every edge of `spanner`, so callers can
/// replace their spanner wholesale; certificates and
/// [`RepairOutcome::added`] describe the delta.
///
/// # Panics
///
/// Panics if the vertex counts differ or a candidate id is out of range.
#[must_use]
pub fn respan_candidates(
    graph: &Graph,
    spanner: &Graph,
    params: SpannerParams,
    candidates: &[EdgeId],
    options: &RepairOptions,
) -> RepairOutcome {
    respan_candidates_with(
        &mut RepairScratch::new(),
        graph,
        spanner,
        params,
        candidates,
        options,
    )
}

/// Like [`respan_candidates`] but running on pooled [`RepairScratch`] state
/// — the form serving layers use, holding one scratch across every wave of
/// a churn loop. The output is bit-identical to [`respan_candidates`]; only
/// the per-call setup (sweep events, candidate dedup, LBC fault views and
/// BFS buffers) stops being reallocated, and candidate decisions sharing a
/// source reuse one first-round BFS tree (see [`LbcScratch`]).
///
/// # Panics
///
/// Panics if the vertex counts differ or a candidate id is out of range.
#[must_use]
pub fn respan_candidates_with(
    scratch: &mut RepairScratch,
    graph: &Graph,
    spanner: &Graph,
    params: SpannerParams,
    candidates: &[EdgeId],
    options: &RepairOptions,
) -> RepairOutcome {
    assert_eq!(
        graph.vertex_count(),
        spanner.vertex_count(),
        "repair requires the spanner and graph to share a vertex set"
    );
    let start = Instant::now();
    let t = params.stretch();
    let alpha = params.f();
    let model = params.fault_model();

    // Sweep events: force-included spanner edges first at equal weight, so a
    // candidate's LBC decision always sees every previous commitment of the
    // same weight class — declining can only make the spanner sparser, never
    // invalid, because the force-included edge itself is a witness path.
    // Class 0 events index the spanner, class 1 events the graph.
    scratch.events.clear();
    for (id, edge) in spanner.edges() {
        scratch.events.push((edge.weight(), 0, id.as_u32()));
    }
    scratch.seen.begin(graph.edge_count());
    for &c in candidates {
        let edge = graph.edge(c);
        if !scratch.seen.set(c.index()) {
            continue;
        }
        let (u, v) = edge.endpoints();
        if spanner.edge_between(u, v).is_some() {
            continue;
        }
        scratch.events.push((edge.weight(), 1, c.as_u32()));
    }
    scratch.events.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then_with(|| a.1.cmp(&b.1))
            .then_with(|| a.2.cmp(&b.2))
    });

    let mut rebuilt = Graph::with_capacity(graph.vertex_count(), scratch.events.len());
    let mut added = Vec::new();
    let mut certificates = Vec::new();
    let mut stats = SpannerStats {
        algorithm: "respan",
        input_vertices: graph.vertex_count(),
        input_edges: graph.edge_count(),
        ..SpannerStats::default()
    };

    scratch.lbc.reset();
    for &(_, class, index) in &scratch.events {
        if class == 0 {
            let edge = spanner.edge(EdgeId::new(index as usize));
            let (u, v) = edge.endpoints();
            if rebuilt.edge_between(u, v).is_none() {
                rebuilt.add_edge(u.index(), v.index(), edge.weight());
            }
        } else {
            let id = EdgeId::new(index as usize);
            let edge = graph.edge(id);
            let (u, v) = edge.endpoints();
            let (decision, lbc_stats) =
                decide_lbc_with(&mut scratch.lbc, &rebuilt, model, u, v, t, alpha);
            stats.lbc_calls += 1;
            stats.bfs_runs += lbc_stats.bfs_runs;
            if let LbcDecision::Yes(cut) = decision {
                let spanner_edge = rebuilt.add_edge(u.index(), v.index(), edge.weight());
                added.push(id);
                if options.collect_certificates {
                    certificates.push(EdgeCertificate {
                        input_edge: id,
                        spanner_edge,
                        cut,
                    });
                }
            }
        }
    }
    // The rebuilt graph dies with this frame; make sure no stale tree can
    // alias a future graph at the same address and counts.
    scratch.lbc.reset();

    stats.spanner_edges = rebuilt.edge_count();
    stats.elapsed = start.elapsed();
    // Serving layers install this spanner directly; hand it over in pure
    // CSR form so their query path never touches an append buffer.
    rebuilt.compact();
    RepairOutcome {
        spanner: rebuilt,
        added,
        certificates,
        stats,
    }
}

/// Respan over **every** edge of `graph`: the escalation path that restores
/// the full `f`-fault-tolerant `(2k − 1)`-spanner property regardless of how
/// damaged the current spanner is (see the module docs for why the
/// warm-start argument makes this sound).
#[must_use]
pub fn full_respan(
    graph: &Graph,
    spanner: &Graph,
    params: SpannerParams,
    options: &RepairOptions,
) -> RepairOutcome {
    full_respan_with(&mut RepairScratch::new(), graph, spanner, params, options)
}

/// Like [`full_respan`] but running on pooled [`RepairScratch`] state; see
/// [`respan_candidates_with`].
#[must_use]
pub fn full_respan_with(
    scratch: &mut RepairScratch,
    graph: &Graph,
    spanner: &Graph,
    params: SpannerParams,
    options: &RepairOptions,
) -> RepairOutcome {
    let all: Vec<EdgeId> = graph.edge_ids().collect();
    respan_candidates_with(scratch, graph, spanner, params, &all, options)
}

/// Returns the certificates whose recorded cut `F_e` intersects `damage`.
///
/// A certificate witnesses that, when its edge was added, a small fault set
/// could sever every short detour for that edge. When real damage now
/// overlaps that cut, the region around the edge is exactly where the
/// spanner's redundancy was thinnest — serving layers use these edges to
/// seed the candidate neighbourhood of a localized repair.
#[must_use]
pub fn certificates_touching<'c>(
    certificates: &'c [EdgeCertificate],
    damage: &FaultSet,
) -> Vec<&'c EdgeCertificate> {
    certificates
        .iter()
        .filter(|cert| match (&cert.cut, damage) {
            (FaultSet::Vertices(cut), FaultSet::Vertices(hit)) => {
                cut.iter().any(|v| hit.contains(v))
            }
            (FaultSet::Edges(cut), FaultSet::Edges(hit)) => cut.iter().any(|e| hit.contains(e)),
            _ => false,
        })
        .collect()
}

/// Convenience used by repair drivers: the endpoints of every edge in a
/// candidate list, deduplicated — the seed set for neighbourhood expansion.
#[must_use]
pub fn candidate_endpoints(graph: &Graph, candidates: &[EdgeId]) -> Vec<VertexId> {
    let mut out: Vec<VertexId> = candidates
        .iter()
        .flat_map(|&e| {
            let (u, v) = graph.edge(e).endpoints();
            [u, v]
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_spanner, VerificationMode};
    use crate::{poly_greedy_spanner, poly_greedy_spanner_with, PolyGreedyOptions};
    use ftspan_graph::{generators, vid};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respan_from_empty_equals_fresh_greedy() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = generators::connected_gnp(20, 0.35, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let fresh = poly_greedy_spanner(&g, params);
        let empty = Graph::empty_like(&g);
        let repaired = full_respan(&g, &empty, params, &RepairOptions::default());
        assert_eq!(repaired.spanner.edge_count(), fresh.spanner.edge_count());
        assert_eq!(repaired.edges_added(), fresh.spanner.edge_count());
        for (_, e) in fresh.spanner.edges() {
            let (u, v) = e.endpoints();
            assert!(repaired.spanner.edge_between(u, v).is_some());
        }
    }

    #[test]
    fn respan_preserves_existing_edges_and_restores_validity() {
        let mut rng = StdRng::seed_from_u64(22);
        let g = generators::connected_gnp(16, 0.4, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let built = poly_greedy_spanner(&g, params);
        // Damage the spanner: drop half its edges.
        let keep: Vec<EdgeId> = built
            .spanner
            .edge_ids()
            .filter(|e| e.index() % 2 == 0)
            .collect();
        let damaged = built.spanner.edge_subgraph(keep);
        let repaired = full_respan(&g, &damaged, params, &RepairOptions::default());
        // Every surviving edge is still there...
        assert!(damaged.is_edge_subgraph_of(&repaired.spanner));
        // ...and the repaired spanner is valid again.
        let report = verify_spanner(&g, &repaired.spanner, params, VerificationMode::Exhaustive);
        assert!(report.is_valid(), "violations: {:?}", report.violations);
    }

    #[test]
    fn respan_on_a_valid_spanner_adds_nothing() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = generators::connected_gnp(18, 0.3, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let built = poly_greedy_spanner(&g, params);
        let repaired = full_respan(&g, &built.spanner, params, &RepairOptions::default());
        // A valid f-FT spanner already witnesses every candidate, so the
        // warm-start sweep must decline them all.
        assert_eq!(repaired.edges_added(), 0);
        assert_eq!(repaired.spanner.edge_count(), built.spanner.edge_count());
    }

    #[test]
    fn respan_weighted_respects_weight_order() {
        let mut rng = StdRng::seed_from_u64(24);
        let base = generators::connected_gnp(14, 0.35, &mut rng);
        let g = generators::with_random_weights(&base, 1.0, 9.0, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let built = poly_greedy_spanner(&g, params);
        let keep: Vec<EdgeId> = built
            .spanner
            .edge_ids()
            .filter(|e| e.index() % 3 != 0)
            .collect();
        let damaged = built.spanner.edge_subgraph(keep);
        let repaired = full_respan(&g, &damaged, params, &RepairOptions::default());
        let report = verify_spanner(&g, &repaired.spanner, params, VerificationMode::Exhaustive);
        assert!(report.is_valid(), "violations: {:?}", report.violations);
    }

    #[test]
    fn partial_candidates_only_pay_for_candidates() {
        let g = generators::complete(12);
        let params = SpannerParams::vertex(2, 1);
        let built = poly_greedy_spanner(&g, params);
        let candidates: Vec<EdgeId> = g.edge_ids().take(10).collect();
        let out = respan_candidates(
            &g,
            &built.spanner,
            params,
            &candidates,
            &RepairOptions::default(),
        );
        // Only candidates not already in the spanner are decided.
        let fresh: usize = candidates
            .iter()
            .filter(|&&c| {
                let (u, v) = g.edge(c).endpoints();
                built.spanner.edge_between(u, v).is_none()
            })
            .count();
        assert_eq!(out.stats.lbc_calls, fresh);
        assert!(built.spanner.is_edge_subgraph_of(&out.spanner));
    }

    #[test]
    fn certificates_are_collected_when_requested() {
        let g = generators::complete(10);
        let params = SpannerParams::vertex(2, 1);
        let empty = Graph::empty_like(&g);
        let options = RepairOptions {
            collect_certificates: true,
        };
        let out = full_respan(&g, &empty, params, &options);
        assert_eq!(out.certificates.len(), out.edges_added());
        for cert in &out.certificates {
            let (u, v) = g.edge(cert.input_edge).endpoints();
            let (hu, hv) = out.spanner.edge(cert.spanner_edge).endpoints();
            assert_eq!((u, v), (hu, hv));
        }
    }

    #[test]
    fn certificates_touching_filters_by_model_and_membership() {
        let g = generators::complete(10);
        let params = SpannerParams::vertex(2, 2);
        let options = PolyGreedyOptions {
            collect_certificates: true,
            ..PolyGreedyOptions::default()
        };
        let built = poly_greedy_spanner_with(&g, params, &options);
        let nonempty: Vec<_> = built
            .certificates
            .iter()
            .filter(|c| !c.cut.is_empty())
            .collect();
        assert!(
            !nonempty.is_empty(),
            "expected some non-trivial certificates"
        );
        let victim = nonempty[0].cut.vertex_faults()[0];
        let touched = certificates_touching(&built.certificates, &FaultSet::vertices([victim]));
        assert!(touched.iter().any(|c| c.cut.contains_vertex(victim)));
        assert!(touched.iter().all(|c| c.cut.contains_vertex(victim)));
        // Model mismatch yields nothing.
        let cross = certificates_touching(
            &built.certificates,
            &FaultSet::edges([ftspan_graph::eid(0)]),
        );
        assert!(cross.is_empty());
    }

    #[test]
    fn candidate_endpoints_deduplicates() {
        let g = generators::path(5);
        let ids: Vec<EdgeId> = g.edge_ids().collect();
        let ends = candidate_endpoints(&g, &ids);
        assert_eq!(ends, (0..5).map(vid).collect::<Vec<_>>());
    }

    #[test]
    fn pooled_respan_matches_one_shot_respan_across_reuses() {
        // One scratch, three different repair problems in sequence: every
        // output must equal the one-shot (fresh-scratch) path's.
        let mut scratch = RepairScratch::new();
        for seed in [31u64, 32, 33] {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::connected_gnp(18, 0.3, &mut rng);
            let params = SpannerParams::vertex(2, 1);
            let built = poly_greedy_spanner(&g, params);
            let keep: Vec<EdgeId> = built
                .spanner
                .edge_ids()
                .filter(|e| e.index() % 2 == 0)
                .collect();
            let damaged = built.spanner.edge_subgraph(keep);
            let candidates: Vec<EdgeId> = g.edge_ids().collect();
            let options = RepairOptions {
                collect_certificates: true,
            };
            let reference = respan_candidates(&g, &damaged, params, &candidates, &options);
            let pooled =
                respan_candidates_with(&mut scratch, &g, &damaged, params, &candidates, &options);
            assert_eq!(pooled.added, reference.added);
            assert_eq!(pooled.stats.lbc_calls, reference.stats.lbc_calls);
            assert_eq!(pooled.spanner.edge_count(), reference.spanner.edge_count());
            assert_eq!(pooled.certificates.len(), reference.certificates.len());
            for (a, b) in pooled.certificates.iter().zip(&reference.certificates) {
                assert_eq!(a.input_edge, b.input_edge);
                assert_eq!(a.cut, b.cut);
            }
            assert!(reference.spanner.is_edge_subgraph_of(&pooled.spanner));
        }
    }

    #[test]
    #[should_panic(expected = "share a vertex set")]
    fn mismatched_vertex_sets_panic() {
        let g = generators::path(4);
        let h = Graph::new(5);
        let _ = full_respan(
            &g,
            &h,
            SpannerParams::vertex(2, 1),
            &RepairOptions::default(),
        );
    }
}
