//! The exact (exponential-time) greedy fault-tolerant spanner of
//! [BDPW18, BP19] — Algorithm 1 of the paper.
//!
//! For every edge `{u, v}` in nondecreasing weight order, the algorithm asks
//! whether **some** fault set `F` of size at most `f` satisfies
//! `d_{H∖F}(u, v) > (2k − 1) · w(u, v)`; if so the edge is added. Answering
//! that question exactly requires searching over fault sets (the underlying
//! Length-Bounded Cut problem is NP-hard), which is why this construction is
//! exponential in `f` and serves as the *baseline* the paper's
//! polynomial-time algorithm is measured against (experiment E5).
//!
//! The search is pruned to fault candidates that can actually lie on a
//! stretch-bounded path (vertices `x` with `d_H(u,x) + d_H(x,v) ≤ (2k−1)·w`),
//! which is sound: elements outside that set can never change whether a
//! violating path survives. A configurable enumeration budget guards against
//! accidental blow-ups.

use std::time::Instant;

use ftspan_graph::dijkstra::dijkstra_distances;
use ftspan_graph::{EdgeId, FaultView, Graph, VertexId};

use crate::error::{Result, SpannerError};
use crate::fault::count_fault_sets;
use crate::stats::{SpannerResult, SpannerStats};
use crate::{FaultModel, SpannerParams};

/// Options for [`exact_greedy_spanner_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExactGreedyOptions {
    /// Maximum number of fault sets the per-edge search may enumerate before
    /// giving up with [`SpannerError::ExactSearchBudgetExceeded`].
    pub enumeration_budget: u128,
}

impl Default for ExactGreedyOptions {
    fn default() -> Self {
        Self {
            enumeration_budget: 5_000_000,
        }
    }
}

/// Runs the exact greedy algorithm (Algorithm 1) with default options.
///
/// # Errors
///
/// Returns [`SpannerError::ExactSearchBudgetExceeded`] when some edge would
/// require enumerating more fault sets than the default budget allows.
///
/// # Examples
///
/// ```
/// use ftspan::{exact_greedy_spanner, SpannerParams};
/// use ftspan_graph::generators;
///
/// let g = generators::complete(12);
/// let result = exact_greedy_spanner(&g, SpannerParams::vertex(2, 1)).unwrap();
/// assert!(result.spanner.edge_count() <= g.edge_count());
/// ```
pub fn exact_greedy_spanner(graph: &Graph, params: SpannerParams) -> Result<SpannerResult> {
    exact_greedy_spanner_with(graph, params, &ExactGreedyOptions::default())
}

/// Runs the exact greedy algorithm with an explicit enumeration budget.
///
/// # Errors
///
/// Returns [`SpannerError::ExactSearchBudgetExceeded`] when some edge would
/// require enumerating more fault sets than allowed.
pub fn exact_greedy_spanner_with(
    graph: &Graph,
    params: SpannerParams,
    options: &ExactGreedyOptions,
) -> Result<SpannerResult> {
    let start = Instant::now();
    let threshold_factor = f64::from(params.stretch());
    let f = params.f() as usize;
    let model = params.fault_model();

    let mut spanner = Graph::empty_like(graph);
    let mut stats = SpannerStats {
        algorithm: "exact-greedy",
        input_vertices: graph.vertex_count(),
        input_edges: graph.edge_count(),
        ..SpannerStats::default()
    };

    for edge_id in graph.edge_ids_by_weight() {
        let edge = graph.edge(edge_id);
        let (u, v) = edge.endpoints();
        let threshold = threshold_factor * edge.weight();
        let found = match model {
            FaultModel::Vertex => {
                exists_vertex_cut(&spanner, u, v, threshold, f, options, &mut stats)?
            }
            FaultModel::Edge => exists_edge_cut(&spanner, u, v, threshold, f, options, &mut stats)?,
        };
        if found {
            spanner.add_edge(u.index(), v.index(), edge.weight());
        }
    }

    stats.spanner_edges = spanner.edge_count();
    stats.elapsed = start.elapsed();
    Ok(SpannerResult {
        spanner,
        params,
        stats,
        certificates: Vec::new(),
    })
}

/// Does some vertex fault set of size at most `f` push `d_{H∖F}(u, v)` above
/// `threshold`?
fn exists_vertex_cut(
    spanner: &Graph,
    u: VertexId,
    v: VertexId,
    threshold: f64,
    f: usize,
    options: &ExactGreedyOptions,
    stats: &mut SpannerStats,
) -> Result<bool> {
    // Empty fault set first: if the pair is already unspanned we are done.
    if distance_exceeds(spanner, &[], &[], u, v, threshold) {
        stats.fault_sets_enumerated += 1;
        return Ok(true);
    }
    stats.fault_sets_enumerated += 1;
    if f == 0 {
        return Ok(false);
    }
    // Prune to vertices that can lie on a path of length <= threshold.
    let du = dijkstra_distances(spanner, u);
    let dv = dijkstra_distances(spanner, v);
    let candidates: Vec<VertexId> = spanner
        .vertices()
        .filter(|&x| x != u && x != v && du[x.index()] + dv[x.index()] <= threshold + 1e-9)
        .collect();
    let required = count_fault_sets(candidates.len(), f);
    if required > options.enumeration_budget {
        return Err(SpannerError::ExactSearchBudgetExceeded {
            required,
            budget: options.enumeration_budget,
        });
    }
    let mut chosen: Vec<VertexId> = Vec::with_capacity(f);
    Ok(search_vertex_subsets(
        spanner,
        &candidates,
        0,
        f,
        &mut chosen,
        u,
        v,
        threshold,
        stats,
    ))
}

#[allow(clippy::too_many_arguments)]
fn search_vertex_subsets(
    spanner: &Graph,
    candidates: &[VertexId],
    start: usize,
    remaining: usize,
    chosen: &mut Vec<VertexId>,
    u: VertexId,
    v: VertexId,
    threshold: f64,
    stats: &mut SpannerStats,
) -> bool {
    if remaining == 0 {
        return false;
    }
    for i in start..candidates.len() {
        chosen.push(candidates[i]);
        stats.fault_sets_enumerated += 1;
        if distance_exceeds(spanner, chosen, &[], u, v, threshold)
            || search_vertex_subsets(
                spanner,
                candidates,
                i + 1,
                remaining - 1,
                chosen,
                u,
                v,
                threshold,
                stats,
            )
        {
            chosen.pop();
            return true;
        }
        chosen.pop();
    }
    false
}

/// Does some edge fault set of size at most `f` push `d_{H∖F}(u, v)` above
/// `threshold`?
fn exists_edge_cut(
    spanner: &Graph,
    u: VertexId,
    v: VertexId,
    threshold: f64,
    f: usize,
    options: &ExactGreedyOptions,
    stats: &mut SpannerStats,
) -> Result<bool> {
    if distance_exceeds(spanner, &[], &[], u, v, threshold) {
        stats.fault_sets_enumerated += 1;
        return Ok(true);
    }
    stats.fault_sets_enumerated += 1;
    if f == 0 {
        return Ok(false);
    }
    let du = dijkstra_distances(spanner, u);
    let dv = dijkstra_distances(spanner, v);
    let candidates: Vec<EdgeId> = spanner
        .edge_ids()
        .filter(|&e| {
            let (x, y) = spanner.edge(e).endpoints();
            let w = spanner.weight(e);
            let via_xy = du[x.index()] + w + dv[y.index()];
            let via_yx = du[y.index()] + w + dv[x.index()];
            via_xy.min(via_yx) <= threshold + 1e-9
        })
        .collect();
    let required = count_fault_sets(candidates.len(), f);
    if required > options.enumeration_budget {
        return Err(SpannerError::ExactSearchBudgetExceeded {
            required,
            budget: options.enumeration_budget,
        });
    }
    let mut chosen: Vec<EdgeId> = Vec::with_capacity(f);
    Ok(search_edge_subsets(
        spanner,
        &candidates,
        0,
        f,
        &mut chosen,
        u,
        v,
        threshold,
        stats,
    ))
}

#[allow(clippy::too_many_arguments)]
fn search_edge_subsets(
    spanner: &Graph,
    candidates: &[EdgeId],
    start: usize,
    remaining: usize,
    chosen: &mut Vec<EdgeId>,
    u: VertexId,
    v: VertexId,
    threshold: f64,
    stats: &mut SpannerStats,
) -> bool {
    if remaining == 0 {
        return false;
    }
    for i in start..candidates.len() {
        chosen.push(candidates[i]);
        stats.fault_sets_enumerated += 1;
        if distance_exceeds(spanner, &[], chosen, u, v, threshold)
            || search_edge_subsets(
                spanner,
                candidates,
                i + 1,
                remaining - 1,
                chosen,
                u,
                v,
                threshold,
                stats,
            )
        {
            chosen.pop();
            return true;
        }
        chosen.pop();
    }
    false
}

/// Is `d_{H ∖ (vertex_faults ∪ edge_faults)}(u, v) > threshold`?
fn distance_exceeds(
    spanner: &Graph,
    vertex_faults: &[VertexId],
    edge_faults: &[EdgeId],
    u: VertexId,
    v: VertexId,
    threshold: f64,
) -> bool {
    let mut view = FaultView::new(spanner);
    for &x in vertex_faults {
        view.block_vertex(x);
    }
    for &e in edge_faults {
        view.block_edge(e);
    }
    let d = dijkstra_distances(&view, u)[v.index()];
    d > threshold + 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_spanner, VerificationMode};
    use crate::{bounds, poly_greedy_spanner};
    use ftspan_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_output_is_a_valid_vft_spanner() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = generators::connected_gnp(14, 0.35, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let result = exact_greedy_spanner(&g, params).unwrap();
        let report = verify_spanner(&g, &result.spanner, params, VerificationMode::Exhaustive);
        assert!(report.is_valid(), "violations: {:?}", report.violations);
    }

    #[test]
    fn exact_output_is_a_valid_eft_spanner() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::connected_gnp(12, 0.4, &mut rng);
        let params = SpannerParams::edge(2, 1);
        let result = exact_greedy_spanner(&g, params).unwrap();
        let report = verify_spanner(&g, &result.spanner, params, VerificationMode::Exhaustive);
        assert!(report.is_valid(), "violations: {:?}", report.violations);
    }

    #[test]
    fn exact_meets_the_bp19_size_bound() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = generators::connected_gnp(20, 0.5, &mut rng);
        let params = SpannerParams::vertex(2, 2);
        let result = exact_greedy_spanner(&g, params).unwrap();
        let bound = bounds::optimal_ft_size_bound(20, 2, 2);
        assert!((result.spanner.edge_count() as f64) <= bound);
    }

    #[test]
    fn exact_is_never_larger_than_keeping_everything_and_never_smaller_than_poly_is_valid() {
        // Both algorithms produce valid spanners; on small graphs the exact
        // one is expected to be at most as large as the polynomial one most
        // of the time (it solves the cut question exactly). We assert the
        // weaker, always-true property plus a sanity comparison that the
        // exact spanner is within the poly spanner's size.
        let mut rng = StdRng::seed_from_u64(13);
        let g = generators::connected_gnp(16, 0.4, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let exact = exact_greedy_spanner(&g, params).unwrap();
        let poly = poly_greedy_spanner(&g, params);
        assert!(exact.spanner.edge_count() <= g.edge_count());
        assert!(exact.spanner.edge_count() <= poly.spanner.edge_count() + 5);
    }

    #[test]
    fn fault_free_exact_greedy_matches_classic_greedy_size() {
        // With f = 0 the exact greedy is exactly the ADD+93 greedy.
        let g = generators::complete(15);
        let params = SpannerParams::vertex(2, 0);
        let exact = exact_greedy_spanner(&g, params).unwrap();
        let classic = crate::nonft::greedy_spanner(&g, 2);
        assert_eq!(exact.spanner.edge_count(), classic.spanner.edge_count());
    }

    #[test]
    fn tree_input_is_returned_whole() {
        let mut rng = StdRng::seed_from_u64(14);
        let g = generators::random_tree_with_chords(20, 0, &mut rng);
        let result = exact_greedy_spanner(&g, SpannerParams::vertex(2, 2)).unwrap();
        assert_eq!(result.spanner.edge_count(), g.edge_count());
    }

    #[test]
    fn budget_exceeded_is_reported() {
        let g = generators::complete(30);
        let options = ExactGreedyOptions {
            enumeration_budget: 10,
        };
        let err = exact_greedy_spanner_with(&g, SpannerParams::vertex(2, 3), &options);
        assert!(matches!(
            err,
            Err(SpannerError::ExactSearchBudgetExceeded { .. })
        ));
    }

    #[test]
    fn weighted_exact_greedy_is_valid() {
        let mut rng = StdRng::seed_from_u64(15);
        let base = generators::connected_gnp(12, 0.4, &mut rng);
        let g = generators::with_random_weights(&base, 1.0, 5.0, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let result = exact_greedy_spanner(&g, params).unwrap();
        let report = verify_spanner(&g, &result.spanner, params, VerificationMode::Exhaustive);
        assert!(report.is_valid(), "violations: {:?}", report.violations);
    }

    #[test]
    fn stats_count_enumerated_fault_sets() {
        let g = generators::complete(10);
        let result = exact_greedy_spanner(&g, SpannerParams::vertex(2, 1)).unwrap();
        assert!(result.stats.fault_sets_enumerated >= g.edge_count());
        assert_eq!(result.stats.algorithm, "exact-greedy");
    }
}
