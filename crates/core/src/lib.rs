//! # ftspan
//!
//! Efficient and simple algorithms for **fault-tolerant graph spanners**,
//! implementing Dinitz & Robelle, *"Efficient and Simple Algorithms for
//! Fault-Tolerant Spanners"*, PODC 2020, together with the baselines the
//! paper builds on and compares against.
//!
//! An *`f`-fault-tolerant `(2k − 1)`-spanner* of a graph `G` is a subgraph `H`
//! such that for every set `F` of at most `f` failed vertices (or edges) and
//! every surviving pair `u, v`,
//! `d_{H∖F}(u, v) ≤ (2k − 1) · d_{G∖F}(u, v)`.
//!
//! ## What is implemented
//!
//! | Construction | Entry point | Size | Time |
//! |---|---|---|---|
//! | Modified greedy (the paper's contribution, Algorithms 3/4) | [`poly_greedy_spanner`] | `O(k·f^{1−1/k}·n^{1+1/k})` | polynomial |
//! | Exact greedy [BDPW18, BP19] (Algorithm 1) | [`exact_greedy_spanner`] | `O(f^{1−1/k}·n^{1+1/k})` | exponential in `f` |
//! | Dinitz–Krauthgamer [DK11] | [`dk::dk_spanner`] | `O(f^{2−1/k}·n^{1+1/k}·log n)` | polynomial |
//! | Classical greedy [ADD+93] | [`nonft::greedy_spanner`] | `O(n^{1+1/k})` | polynomial |
//! | Baswana–Sen [BS07] | [`baswana_sen::baswana_sen_spanner`] | `O(k·n^{1+1/k})` | near-linear |
//!
//! plus the [`lbc`] Length-Bounded Cut approximation that powers the modified
//! greedy, a fault-tolerance [`verify`] checker, [`blocking`]-set analysis
//! tools (Lemma 6), warm-start [`repair`] hooks for online serving layers,
//! and closed-form reference [`bounds`] for every theorem.
//! Distributed (LOCAL / CONGEST) constructions live in the companion crate
//! `ftspan-distributed`; the online query-serving engine lives in
//! `ftspan-oracle`.
//!
//! ## Quick start
//!
//! ```
//! use ftspan::{poly_greedy_spanner, SpannerParams};
//! use ftspan::verify::{verify_spanner, VerificationMode};
//! use ftspan_graph::generators;
//!
//! // A dense random graph.
//! let mut rng = rand::thread_rng();
//! let graph = generators::connected_gnp(60, 0.3, &mut rng);
//!
//! // Build a 1-vertex-fault-tolerant 3-spanner in polynomial time.
//! let params = SpannerParams::vertex(2, 1);
//! let result = poly_greedy_spanner(&graph, params);
//! assert!(result.spanner.edge_count() <= graph.edge_count());
//!
//! // Spot-check the fault-tolerance property on sampled fault sets.
//! let report = verify_spanner(
//!     &graph,
//!     &result.spanner,
//!     params,
//!     VerificationMode::Sampled { samples: 20, seed: 1 },
//! );
//! assert!(report.is_valid());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baswana_sen;
pub mod blocking;
pub mod bounds;
mod builder;
pub mod dk;
mod error;
mod fault;
pub mod greedy_exact;
pub mod greedy_par;
pub mod greedy_poly;
pub mod lbc;
pub mod nonft;
mod params;
pub mod repair;
mod stats;
pub mod verify;
pub mod wire;

pub use builder::{Algorithm, SpannerBuilder};
pub use error::{Result, SpannerError};
pub use fault::{
    count_fault_sets, enumerate_edge_fault_sets, enumerate_fault_sets, enumerate_vertex_fault_sets,
    sample_fault_set, FaultSet,
};
pub use greedy_exact::{exact_greedy_spanner, exact_greedy_spanner_with, ExactGreedyOptions};
pub use greedy_par::{
    par_poly_greedy_spanner_traced, par_poly_greedy_spanner_with, ParallelGreedyOptions,
    SpeculationStats,
};
pub use greedy_poly::{
    poly_greedy_spanner, poly_greedy_spanner_with, EdgeOrder, PolyGreedyOptions,
};
pub use params::{FaultModel, SpannerParams};
pub use stats::{EdgeCertificate, SpannerResult, SpannerStats};
