//! The paper's main contribution: the polynomial-time modified greedy
//! fault-tolerant spanner (Algorithms 3 and 4).
//!
//! The classical greedy algorithm of [BDPW18, BP19] decides whether to add an
//! edge `{u, v}` by searching for a fault set of size at most `f` that
//! destroys every stretch-`(2k − 1)` path — an exponential-time step. The
//! modification replaces that step with the polynomial-time
//! [`LBC(t, α)`](crate::lbc) gap decision with `t = 2k − 1` and `α = f`,
//! paying only a factor `k` in the size bound:
//!
//! * **Correctness** (Theorems 5 and 10): the output is an `f`-fault-tolerant
//!   `(2k − 1)`-spanner, for unweighted graphs with any edge ordering and for
//!   weighted graphs when edges are considered in nondecreasing weight order.
//! * **Size** (Theorem 8): at most `O(k · f^{1−1/k} · n^{1+1/k})` edges.
//! * **Time** (Theorem 9): `O(m · k · f^{2−1/k} · n^{1+1/k})`.

use std::time::Instant;

use ftspan_graph::{EdgeId, Graph};

use crate::lbc::{decide_lbc_with, LbcDecision, LbcScratch};
use crate::stats::{EdgeCertificate, SpannerResult, SpannerStats};
use crate::SpannerParams;

/// The order in which the greedy loop considers the input edges.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum EdgeOrder {
    /// Nondecreasing weight (ties broken by insertion order). This is
    /// Algorithm 4 and is **required for correctness on weighted graphs**.
    #[default]
    NondecreasingWeight,
    /// Insertion order of the input graph. Valid for unweighted (unit-weight)
    /// graphs, where Theorem 5 holds for an arbitrary order.
    Insertion,
    /// A caller-supplied permutation of the edge identifiers. Valid for
    /// unweighted graphs; useful for ablation experiments on the effect of
    /// ordering.
    Custom(Vec<EdgeId>),
}

/// Options for [`poly_greedy_spanner_with`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PolyGreedyOptions {
    /// Edge ordering (defaults to nondecreasing weight).
    pub edge_order: EdgeOrder,
    /// When `true`, record the LBC certificate for every added edge (the sets
    /// `F_e` of Lemma 6). Adds memory proportional to `f · k` per spanner
    /// edge.
    pub collect_certificates: bool,
}

/// Builds an `f`-fault-tolerant `(2k − 1)`-spanner in polynomial time using
/// the modified greedy algorithm with default options (weight ordering, no
/// certificates).
///
/// This single entry point covers both Algorithm 3 (unweighted: the weight
/// ordering degenerates to insertion order since all weights are 1) and
/// Algorithm 4 (weighted).
///
/// # Examples
///
/// ```
/// use ftspan::{poly_greedy_spanner, SpannerParams};
/// use ftspan_graph::generators;
///
/// let g = generators::complete(30);
/// let result = poly_greedy_spanner(&g, SpannerParams::vertex(2, 1));
/// assert!(result.spanner.edge_count() < g.edge_count());
/// assert_eq!(result.spanner.vertex_count(), 30);
/// ```
///
/// # Panics
///
/// Panics if a custom edge order references an out-of-range edge.
#[must_use]
pub fn poly_greedy_spanner(graph: &Graph, params: SpannerParams) -> SpannerResult {
    poly_greedy_spanner_with(graph, params, &PolyGreedyOptions::default())
}

/// Builds the modified greedy spanner with explicit [`PolyGreedyOptions`].
///
/// # Panics
///
/// Panics if a custom edge order references an out-of-range edge.
#[must_use]
pub fn poly_greedy_spanner_with(
    graph: &Graph,
    params: SpannerParams,
    options: &PolyGreedyOptions,
) -> SpannerResult {
    let start = Instant::now();
    let order: Vec<EdgeId> = match &options.edge_order {
        EdgeOrder::NondecreasingWeight => graph.edge_ids_by_weight(),
        EdgeOrder::Insertion => graph.edge_ids().collect(),
        EdgeOrder::Custom(order) => order.clone(),
    };
    let t = params.stretch();
    let alpha = params.f();
    let model = params.fault_model();

    let mut spanner = Graph::empty_like(graph);
    let mut certificates = Vec::new();
    let mut stats = SpannerStats {
        algorithm: "poly-greedy",
        input_vertices: graph.vertex_count(),
        input_edges: graph.edge_count(),
        ..SpannerStats::default()
    };

    // One incremental-engine scratch for the whole sweep: pooled fault
    // views and BFS buffers, and a shared first-round tree across runs of
    // same-source edges (weight ordering visits them consecutively on the
    // common generators). Decisions are bit-identical to from-scratch
    // `decide_lbc`; see `LbcScratch`.
    let mut scratch = LbcScratch::new();
    for edge_id in order {
        let edge = graph.edge(edge_id);
        let (u, v) = edge.endpoints();
        let (decision, lbc_stats) = decide_lbc_with(&mut scratch, &spanner, model, u, v, t, alpha);
        stats.lbc_calls += 1;
        stats.bfs_runs += lbc_stats.bfs_runs;
        if let LbcDecision::Yes(cut) = decision {
            let spanner_edge = spanner.add_edge(u.index(), v.index(), edge.weight());
            if options.collect_certificates {
                certificates.push(EdgeCertificate {
                    input_edge: edge_id,
                    spanner_edge,
                    cut,
                });
            }
        }
    }

    stats.spanner_edges = spanner.edge_count();
    stats.elapsed = start.elapsed();
    SpannerResult {
        spanner,
        params,
        stats,
        certificates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use crate::lbc::is_length_bounded_cut;
    use crate::verify::{verify_spanner, VerificationMode};
    use ftspan_graph::generators;
    use ftspan_graph::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn spanner_of_a_tree_is_the_tree_itself() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::random_tree_with_chords(30, 0, &mut rng);
        let result = poly_greedy_spanner(&g, SpannerParams::vertex(2, 2));
        // Every tree edge is a bridge: even with zero faults there is no
        // alternative path, so the greedy must keep all of them.
        assert_eq!(result.spanner.edge_count(), g.edge_count());
    }

    #[test]
    fn complete_graph_is_sparsified() {
        let g = generators::complete(40);
        let result = poly_greedy_spanner(&g, SpannerParams::vertex(2, 1));
        assert!(result.spanner.edge_count() < g.edge_count() / 2);
        assert!(is_connected(&result.spanner));
    }

    #[test]
    fn fault_free_case_matches_classic_greedy_behaviour() {
        // With f = 0 the LBC test degenerates to "is there a path of at most
        // 2k-1 hops", i.e. the classical greedy spanner condition.
        let g = generators::complete(25);
        let result = poly_greedy_spanner(&g, SpannerParams::vertex(2, 0));
        // A (2k-1)-spanner of K_n for k=2 ends up triangle-free... not quite;
        // but it must be much sparser than K_n and still connected.
        assert!(result.spanner.edge_count() < 100);
        assert!(is_connected(&result.spanner));
    }

    #[test]
    fn output_is_valid_vft_spanner_exhaustively_checked() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::connected_gnp(18, 0.3, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let result = poly_greedy_spanner(&g, params);
        let report = verify_spanner(&g, &result.spanner, params, VerificationMode::Exhaustive);
        assert!(report.is_valid(), "violations: {:?}", report.violations);
    }

    #[test]
    fn output_is_valid_eft_spanner_exhaustively_checked() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::connected_gnp(14, 0.35, &mut rng);
        let params = SpannerParams::edge(2, 1);
        let result = poly_greedy_spanner(&g, params);
        let report = verify_spanner(&g, &result.spanner, params, VerificationMode::Exhaustive);
        assert!(report.is_valid(), "violations: {:?}", report.violations);
    }

    #[test]
    fn weighted_output_is_valid_spanner() {
        let mut rng = StdRng::seed_from_u64(4);
        let base = generators::connected_gnp(16, 0.3, &mut rng);
        let g = generators::with_random_weights(&base, 1.0, 10.0, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let result = poly_greedy_spanner(&g, params);
        let report = verify_spanner(&g, &result.spanner, params, VerificationMode::Exhaustive);
        assert!(report.is_valid(), "violations: {:?}", report.violations);
    }

    #[test]
    fn size_respects_theorem_8_bound() {
        let mut rng = StdRng::seed_from_u64(5);
        for &f in &[1u32, 2, 3] {
            let g = generators::connected_gnp(60, 0.4, &mut rng);
            let params = SpannerParams::vertex(2, f);
            let result = poly_greedy_spanner(&g, params);
            let bound = bounds::poly_greedy_size_bound(60, 2, f);
            assert!(
                (result.spanner.edge_count() as f64) <= bound,
                "spanner has {} edges, bound {bound}",
                result.spanner.edge_count()
            );
        }
    }

    #[test]
    fn stats_are_populated() {
        let g = generators::complete(20);
        let result = poly_greedy_spanner(&g, SpannerParams::vertex(2, 1));
        assert_eq!(result.stats.input_edges, g.edge_count());
        assert_eq!(result.stats.lbc_calls, g.edge_count());
        // `bfs_runs` counts executed passes: the incremental engine shares
        // first-round trees across same-source edges, so the aggregate can
        // be below one pass per LBC call but never above the α + 1 budget.
        assert!(result.stats.bfs_runs > 0);
        assert!(result.stats.bfs_runs <= 2 * g.edge_count());
        assert_eq!(result.stats.spanner_edges, result.spanner.edge_count());
        assert!(result.stats.retention() > 0.0);
    }

    #[test]
    fn certificates_witness_each_added_edge() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::connected_gnp(20, 0.3, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let options = PolyGreedyOptions {
            collect_certificates: true,
            ..PolyGreedyOptions::default()
        };
        let result = poly_greedy_spanner_with(&g, params, &options);
        assert_eq!(result.certificates.len(), result.spanner.edge_count());
        // Each certificate is bounded as in Lemma 6 and references a real
        // edge of both graphs. (The cut was valid for the *partial* spanner
        // at insertion time, so we only check the size bound here.)
        let max_cut = (params.f() * (params.stretch() - 1)) as usize;
        for cert in &result.certificates {
            assert!(cert.cut.len() <= max_cut);
            let (u, v) = g.edge(cert.input_edge).endpoints();
            let (hu, hv) = result.spanner.edge(cert.spanner_edge).endpoints();
            assert_eq!((u, v), (hu, hv));
        }
    }

    #[test]
    fn first_certificate_cut_remains_valid_against_prefix() {
        // The first edge added sees an empty spanner, so its certificate must
        // be the empty cut and trivially valid.
        let g = generators::complete(10);
        let options = PolyGreedyOptions {
            collect_certificates: true,
            ..PolyGreedyOptions::default()
        };
        let result = poly_greedy_spanner_with(&g, SpannerParams::vertex(2, 1), &options);
        let first = &result.certificates[0];
        assert!(first.cut.is_empty());
        let (u, v) = g.edge(first.input_edge).endpoints();
        let empty = Graph::empty_like(&g);
        assert!(is_length_bounded_cut(&empty, &first.cut, u, v, 3));
    }

    #[test]
    fn insertion_and_custom_orders_also_give_valid_spanners_on_unweighted() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::connected_gnp(15, 0.35, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let mut reversed: Vec<EdgeId> = g.edge_ids().collect();
        reversed.reverse();
        for order in [EdgeOrder::Insertion, EdgeOrder::Custom(reversed)] {
            let options = PolyGreedyOptions {
                edge_order: order,
                collect_certificates: false,
            };
            let result = poly_greedy_spanner_with(&g, params, &options);
            let report = verify_spanner(&g, &result.spanner, params, VerificationMode::Exhaustive);
            assert!(report.is_valid());
        }
    }

    #[test]
    fn spanner_is_subgraph_with_same_weights() {
        let mut rng = StdRng::seed_from_u64(8);
        let base = generators::connected_gnp(20, 0.3, &mut rng);
        let g = generators::with_random_weights(&base, 1.0, 4.0, &mut rng);
        let result = poly_greedy_spanner(&g, SpannerParams::vertex(3, 2));
        assert!(result.spanner.is_edge_subgraph_of(&g));
        for (_, e) in result.spanner.edges() {
            let orig = g.edge_between(e.source(), e.target()).unwrap();
            assert_eq!(g.weight(orig), e.weight());
        }
    }

    #[test]
    fn higher_f_never_produces_a_smaller_spanner_on_average() {
        // Not a pointwise guarantee, but across a few seeds the aggregate
        // trend must hold: tolerating more faults needs more edges.
        let mut total_f1 = 0usize;
        let mut total_f3 = 0usize;
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::connected_gnp(40, 0.5, &mut rng);
            total_f1 += poly_greedy_spanner(&g, SpannerParams::vertex(2, 1))
                .spanner
                .edge_count();
            total_f3 += poly_greedy_spanner(&g, SpannerParams::vertex(2, 3))
                .spanner
                .edge_count();
        }
        assert!(total_f3 >= total_f1);
    }

    #[test]
    fn ring_of_cliques_keeps_all_bridges() {
        let g = generators::ring_of_cliques(4, 4);
        let params = SpannerParams::vertex(2, 2);
        let result = poly_greedy_spanner(&g, params);
        // Bridge edges are the only connection between consecutive cliques, so
        // they must survive in any spanner.
        for c in 0..4 {
            let from = c * 4 + 3;
            let to = ((c + 1) % 4) * 4;
            assert!(result.spanner.has_edge_between(from, to));
        }
    }

    #[test]
    fn empty_and_tiny_graphs_are_handled() {
        let g = Graph::new(0);
        let r = poly_greedy_spanner(&g, SpannerParams::vertex(2, 1));
        assert_eq!(r.spanner.vertex_count(), 0);
        let g = Graph::new(1);
        let r = poly_greedy_spanner(&g, SpannerParams::vertex(2, 1));
        assert_eq!(r.spanner.edge_count(), 0);
        let mut g = Graph::new(2);
        g.add_unit_edge(0, 1);
        let r = poly_greedy_spanner(&g, SpannerParams::vertex(2, 1));
        assert_eq!(r.spanner.edge_count(), 1);
    }
}
