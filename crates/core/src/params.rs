//! Algorithm parameters shared by every spanner construction.

use core::fmt;

use crate::error::{Result, SpannerError};

/// Which kind of faults the spanner must tolerate.
///
/// The paper (like most of the literature) proves its bounds for vertex
/// faults and notes that the edge-fault proofs are "essentially identical";
/// both variants are implemented throughout this crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FaultModel {
    /// Up to `f` vertices may fail (`f`-VFT).
    #[default]
    Vertex,
    /// Up to `f` edges may fail (`f`-EFT).
    Edge,
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultModel::Vertex => write!(f, "vertex"),
            FaultModel::Edge => write!(f, "edge"),
        }
    }
}

/// Parameters of an `f`-fault-tolerant `(2k − 1)`-spanner construction.
///
/// * `k ≥ 1` controls the stretch `t = 2k − 1`.
/// * `f ≥ 0` is the number of faults to tolerate (`f = 0` degenerates to the
///   classical non-fault-tolerant greedy spanner).
/// * [`FaultModel`] selects vertex or edge faults.
///
/// # Examples
///
/// ```
/// use ftspan::{FaultModel, SpannerParams};
///
/// let params = SpannerParams::new(2, 1).unwrap();
/// assert_eq!(params.stretch(), 3);
/// assert_eq!(params.fault_model(), FaultModel::Vertex);
/// let edge = params.with_fault_model(FaultModel::Edge);
/// assert_eq!(edge.fault_model(), FaultModel::Edge);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpannerParams {
    k: u32,
    f: u32,
    fault_model: FaultModel,
}

impl SpannerParams {
    /// Creates parameters for an `f`-VFT `(2k − 1)`-spanner.
    ///
    /// # Errors
    ///
    /// Returns [`SpannerError::InvalidStretchParameter`] if `k == 0`.
    pub fn new(k: u32, f: u32) -> Result<Self> {
        if k == 0 {
            return Err(SpannerError::InvalidStretchParameter { k });
        }
        Ok(Self {
            k,
            f,
            fault_model: FaultModel::Vertex,
        })
    }

    /// Creates parameters, panicking on invalid input. Convenient in tests
    /// and examples where `k` is a literal.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn vertex(k: u32, f: u32) -> Self {
        Self::new(k, f).expect("k must be at least 1")
    }

    /// Creates edge-fault-tolerant parameters, panicking on invalid input.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn edge(k: u32, f: u32) -> Self {
        Self::vertex(k, f).with_fault_model(FaultModel::Edge)
    }

    /// Returns a copy with the given fault model.
    #[must_use]
    pub fn with_fault_model(mut self, fault_model: FaultModel) -> Self {
        self.fault_model = fault_model;
        self
    }

    /// The stretch parameter `k`.
    #[inline]
    #[must_use]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The number of tolerated faults `f`.
    #[inline]
    #[must_use]
    pub fn f(&self) -> u32 {
        self.f
    }

    /// The stretch `t = 2k − 1` of the spanner.
    #[inline]
    #[must_use]
    pub fn stretch(&self) -> u32 {
        2 * self.k - 1
    }

    /// The fault model (vertex or edge).
    #[inline]
    #[must_use]
    pub fn fault_model(&self) -> FaultModel {
        self.fault_model
    }

    /// Returns `true` for the degenerate non-fault-tolerant case `f = 0`.
    #[inline]
    #[must_use]
    pub fn is_fault_free(&self) -> bool {
        self.f == 0
    }
}

impl fmt::Display for SpannerParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-{}-fault-tolerant {}-spanner (k={})",
            self.f,
            self.fault_model,
            self.stretch(),
            self.k
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stretch_is_2k_minus_1() {
        for k in 1..10 {
            assert_eq!(SpannerParams::vertex(k, 1).stretch(), 2 * k - 1);
        }
    }

    #[test]
    fn zero_k_is_rejected() {
        assert!(matches!(
            SpannerParams::new(0, 3),
            Err(SpannerError::InvalidStretchParameter { k: 0 })
        ));
    }

    #[test]
    fn zero_f_is_fault_free() {
        assert!(SpannerParams::vertex(2, 0).is_fault_free());
        assert!(!SpannerParams::vertex(2, 1).is_fault_free());
    }

    #[test]
    fn fault_model_round_trip() {
        let p = SpannerParams::vertex(3, 2);
        assert_eq!(p.fault_model(), FaultModel::Vertex);
        assert_eq!(
            p.with_fault_model(FaultModel::Edge).fault_model(),
            FaultModel::Edge
        );
        assert_eq!(SpannerParams::edge(3, 2).fault_model(), FaultModel::Edge);
    }

    #[test]
    fn display_is_informative() {
        let p = SpannerParams::vertex(2, 4);
        let s = p.to_string();
        assert!(s.contains("4"));
        assert!(s.contains("3-spanner"));
        assert!(s.contains("vertex"));
        assert_eq!(format!("{}", FaultModel::Edge), "edge");
    }
}
