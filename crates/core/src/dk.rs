//! The Dinitz–Krauthgamer [DK11] black-box fault-tolerant spanner framework
//! (Theorem 13 of the paper).
//!
//! Given any algorithm `A` that builds a `(2k − 1)`-spanner with `g(n)` edges,
//! the framework runs `O(f³ log n)` independent iterations; in each iteration
//! every vertex participates independently with probability `≈ 1/f`, `A` is
//! run on the induced subgraph of the participants, and the union of all the
//! per-iteration spanners is returned. For any fault set `F` of size at most
//! `f` and any surviving edge `{u, v}`, with high probability some iteration
//! contains both `u` and `v` but no vertex of `F`, and that iteration's
//! spanner certifies the stretch bound.
//!
//! With `g(n) = O(n^{1+1/k})` the output has `O(f^{2−1/k} · n^{1+1/k} · log n)`
//! edges — a worse dependence on `f` than the paper's greedy (the point of
//! experiment E3/E7) — but the framework is trivially parallel, which is why
//! Section 5.2 uses it for the CONGEST construction.

use std::time::Instant;

use ftspan_graph::{Graph, VertexId};
use rand::Rng;

use crate::baswana_sen::baswana_sen_spanner;
use crate::nonft::greedy_spanner;
use crate::stats::{SpannerResult, SpannerStats};
use crate::SpannerParams;

/// Tuning knobs for the Dinitz–Krauthgamer construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DkOptions {
    /// Per-iteration participation probability. `None` uses the paper's
    /// `1/f`, except that `f = 1` (where `1/f = 1` would never exclude the
    /// faulty vertex) falls back to `1/2`.
    pub participation_probability: Option<f64>,
    /// The construction repeats until the union bound over all
    /// `m · n^f` (pair, fault-set) combinations leaves failure probability at
    /// most `n^{-failure_exponent}`. Larger values mean more iterations and a
    /// larger (but safer) spanner. Asymptotically the iteration count is the
    /// paper's `O(f³ log n)`.
    pub failure_exponent: f64,
    /// Hard cap on the number of iterations, as a safety valve.
    pub max_iterations: usize,
}

impl Default for DkOptions {
    fn default() -> Self {
        Self {
            participation_probability: None,
            failure_exponent: 1.0,
            max_iterations: 100_000,
        }
    }
}

/// Computes the number of iterations needed so that, by a union bound over at
/// most `m · n^f` (edge, fault set) pairs, every pair is covered by some
/// iteration with probability at least `1 − n^{−c}`.
#[must_use]
pub fn dk_iteration_count(n: usize, m: usize, f: u32, options: &DkOptions) -> usize {
    if n < 2 {
        return 1;
    }
    let p = participation_probability(f, options);
    let f_f = f64::from(f);
    // Probability that a fixed iteration contains both endpoints and misses
    // every one of the f faults.
    let per_iteration = p * p * (1.0 - p).powf(f_f);
    if per_iteration <= 0.0 {
        return options.max_iterations;
    }
    let n_f = n as f64;
    let ln_combos = (m.max(1) as f64).ln() + f_f * n_f.ln() + options.failure_exponent * n_f.ln();
    let needed = (ln_combos / per_iteration).ceil() as usize;
    needed.clamp(1, options.max_iterations)
}

fn participation_probability(f: u32, options: &DkOptions) -> f64 {
    options
        .participation_probability
        .unwrap_or(if f <= 1 { 0.5 } else { 1.0 / f64::from(f) })
}

/// Runs the Dinitz–Krauthgamer framework with an arbitrary inner spanner
/// algorithm.
///
/// `inner` receives the induced subgraph of one iteration's participants and
/// must return a `(2k − 1)`-spanner of it **on the same (re-indexed) vertex
/// set**; the framework maps its edges back to the original identifiers.
///
/// # Panics
///
/// Panics if `k == 0` or the inner algorithm returns a graph with a different
/// vertex count than its input.
#[must_use]
pub fn dk_spanner_with<R, S>(
    graph: &Graph,
    k: u32,
    f: u32,
    options: &DkOptions,
    mut inner: S,
    rng: &mut R,
) -> SpannerResult
where
    R: Rng + ?Sized,
    S: FnMut(&Graph, u32, &mut R) -> Graph,
{
    assert!(k >= 1, "stretch parameter k must be at least 1");
    let start = Instant::now();
    let n = graph.vertex_count();
    let m = graph.edge_count();
    let p = participation_probability(f, options);
    let iterations = dk_iteration_count(n, m, f, options);

    let mut spanner = Graph::empty_like(graph);
    let mut stats = SpannerStats {
        algorithm: "dinitz-krauthgamer",
        input_vertices: n,
        input_edges: m,
        ..SpannerStats::default()
    };

    if f == 0 {
        // Degenerate case: one iteration over the whole graph.
        let sub_spanner = inner(graph, k, rng);
        assert_eq!(
            sub_spanner.vertex_count(),
            n,
            "inner spanner changed the vertex set"
        );
        spanner.union_edges_from(&sub_spanner);
    } else {
        for _ in 0..iterations {
            let participants: Vec<VertexId> =
                graph.vertices().filter(|_| rng.gen_bool(p)).collect();
            if participants.len() < 2 {
                continue;
            }
            let (induced, original_ids) = graph.induced_subgraph(&participants);
            if induced.edge_count() == 0 {
                continue;
            }
            let sub_spanner = inner(&induced, k, rng);
            assert_eq!(
                sub_spanner.vertex_count(),
                induced.vertex_count(),
                "inner spanner changed the vertex set"
            );
            for (_, edge) in sub_spanner.edges() {
                let (a, b) = edge.endpoints();
                let (u, v) = (original_ids[a.index()], original_ids[b.index()]);
                if spanner.edge_between(u, v).is_none() {
                    spanner.add_edge(u.index(), v.index(), edge.weight());
                }
            }
        }
    }

    stats.spanner_edges = spanner.edge_count();
    stats.elapsed = start.elapsed();
    SpannerResult {
        spanner,
        params: SpannerParams::vertex(k, f),
        stats,
        certificates: Vec::new(),
    }
}

/// Dinitz–Krauthgamer instantiated with the deterministic greedy
/// `(2k − 1)`-spanner of [ADD+93] as the inner algorithm (the natural
/// centralized choice, `g(n) = O(n^{1+1/k})`).
#[must_use]
pub fn dk_spanner<R: Rng + ?Sized>(graph: &Graph, k: u32, f: u32, rng: &mut R) -> SpannerResult {
    dk_spanner_with(
        graph,
        k,
        f,
        &DkOptions::default(),
        |g, k, _| greedy_spanner(g, k).spanner,
        rng,
    )
}

/// Dinitz–Krauthgamer instantiated with Baswana–Sen as the inner algorithm —
/// exactly the combination the paper uses in CONGEST (Theorem 15), here in
/// centralized form for comparison.
#[must_use]
pub fn dk_spanner_baswana_sen<R: Rng + ?Sized>(
    graph: &Graph,
    k: u32,
    f: u32,
    rng: &mut R,
) -> SpannerResult {
    let mut result = dk_spanner_with(
        graph,
        k,
        f,
        &DkOptions::default(),
        |g, k, rng| baswana_sen_spanner(g, k, rng).spanner,
        rng,
    );
    result.stats.algorithm = "dinitz-krauthgamer/baswana-sen";
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use crate::verify::{verify_spanner, VerificationMode};
    use ftspan_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn iteration_count_grows_with_f_and_n() {
        let options = DkOptions::default();
        let base = dk_iteration_count(100, 500, 1, &options);
        assert!(dk_iteration_count(100, 500, 3, &options) > base);
        assert!(dk_iteration_count(1000, 500, 1, &options) > base);
        assert_eq!(dk_iteration_count(1, 0, 2, &options), 1);
    }

    #[test]
    fn zero_probability_hits_the_iteration_cap() {
        let options = DkOptions {
            participation_probability: Some(0.0),
            max_iterations: 77,
            ..DkOptions::default()
        };
        assert_eq!(dk_iteration_count(50, 100, 2, &options), 77);
    }

    #[test]
    fn output_is_a_valid_fault_tolerant_spanner() {
        let mut rng = StdRng::seed_from_u64(40);
        let g = generators::connected_gnp(14, 0.4, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let result = dk_spanner(&g, 2, 1, &mut rng);
        let report = verify_spanner(&g, &result.spanner, params, VerificationMode::Exhaustive);
        assert!(report.is_valid(), "violations: {:?}", report.violations);
    }

    #[test]
    fn baswana_sen_instantiation_is_also_valid() {
        let mut rng = StdRng::seed_from_u64(41);
        let g = generators::connected_gnp(13, 0.4, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        let result = dk_spanner_baswana_sen(&g, 2, 1, &mut rng);
        let report = verify_spanner(&g, &result.spanner, params, VerificationMode::Exhaustive);
        assert!(report.is_valid(), "violations: {:?}", report.violations);
        assert_eq!(result.stats.algorithm, "dinitz-krauthgamer/baswana-sen");
    }

    #[test]
    fn f_zero_degenerates_to_a_single_inner_run() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = generators::complete(20);
        let result = dk_spanner(&g, 2, 0, &mut rng);
        let direct = greedy_spanner(&g, 2);
        assert_eq!(result.spanner.edge_count(), direct.spanner.edge_count());
    }

    #[test]
    fn size_stays_within_the_dk_reference_curve() {
        let mut rng = StdRng::seed_from_u64(43);
        let g = generators::connected_gnp(40, 0.5, &mut rng);
        let result = dk_spanner(&g, 2, 2, &mut rng);
        // Theorem 13 reference curve with a generous constant (the union of
        // many iterations can never exceed m anyway).
        let bound = (10.0 * bounds::dk_size_bound(40, 2, 2)).min(g.edge_count() as f64);
        assert!((result.spanner.edge_count() as f64) <= bound);
    }

    #[test]
    fn dk_is_denser_than_the_modified_greedy_for_larger_f() {
        // The headline comparison of experiment E3: the f-dependence of DK11
        // (f^{2-1/k}) is worse than the modified greedy's (f^{1-1/k}).
        let mut rng = StdRng::seed_from_u64(44);
        let g = generators::connected_gnp(40, 0.6, &mut rng);
        let dk = dk_spanner(&g, 2, 3, &mut rng);
        let greedy = crate::poly_greedy_spanner(&g, SpannerParams::vertex(2, 3));
        assert!(dk.spanner.edge_count() >= greedy.spanner.edge_count());
    }

    #[test]
    fn custom_participation_probability_is_respected() {
        let mut rng = StdRng::seed_from_u64(45);
        let g = generators::complete(12);
        let options = DkOptions {
            participation_probability: Some(1.0),
            failure_exponent: 0.5,
            max_iterations: 3,
        };
        // With p = 1 every vertex participates each iteration, so the union
        // equals the inner spanner of the full graph.
        let result = dk_spanner_with(
            &g,
            2,
            2,
            &options,
            |g, k, _| greedy_spanner(g, k).spanner,
            &mut rng,
        );
        let direct = greedy_spanner(&g, 2);
        assert_eq!(result.spanner.edge_count(), direct.spanner.edge_count());
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        let mut rng = StdRng::seed_from_u64(46);
        for n in 0..4usize {
            let g = Graph::new(n);
            let r = dk_spanner(&g, 2, 1, &mut rng);
            assert_eq!(r.spanner.vertex_count(), n);
            assert_eq!(r.spanner.edge_count(), 0);
        }
    }
}
