//! Verification that a subgraph really is an `f`-fault-tolerant
//! `(2k − 1)`-spanner (Definition 1 of the paper).
//!
//! The checker implements the pair restriction of Lemma 3: it suffices to
//! check, for every fault set `F` and every surviving edge `{u, v}` of `G`
//! whose weight equals its distance in `G \ F`, that
//! `d_{H \ F}(u, v) ≤ (2k − 1) · w(u, v)`.
//!
//! Two modes are provided: exhaustive enumeration of all fault sets of size
//! at most `f` (exact, exponential in `f`, for small instances), and a
//! sampled mode mixing uniformly random fault sets with targeted "attack"
//! sets that fault the interior of current shortest paths in `H`.

use ftspan_graph::dijkstra::DijkstraScratch;
use ftspan_graph::{FaultView, Graph, GraphView, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::fault::{enumerate_fault_sets, sample_fault_set};
use crate::{FaultModel, FaultSet, SpannerParams};

/// How thoroughly to search for violating fault sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerificationMode {
    /// Enumerate every fault set of size at most `f`. Exact but exponential
    /// in `f`; intended for graphs with at most a few dozen vertices.
    Exhaustive,
    /// Check `samples` fault sets: half drawn uniformly at random (size
    /// exactly `f`), half constructed adversarially by faulting the interior
    /// of shortest paths in the spanner between random edge endpoints. The
    /// split is exact and deterministic: an odd count puts the extra sample
    /// in the random half (see [`sampled_split`]), and all sampling derives
    /// from `seed` alone.
    Sampled {
        /// Number of fault sets to try.
        samples: usize,
        /// RNG seed, so verification runs are reproducible.
        seed: u64,
    },
}

/// A single witnessed violation of the fault-tolerant spanner property.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The fault set under which the stretch bound fails.
    pub fault_set: FaultSet,
    /// One endpoint of the violating pair (an edge of `G`).
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
    /// The allowed distance `(2k − 1) · w(u, v)`.
    pub allowed: f64,
    /// The observed distance in `H \ F` (`None` when disconnected).
    pub observed: Option<f64>,
}

/// Result of a verification run.
#[derive(Clone, Debug, Default)]
pub struct VerificationReport {
    /// Number of fault sets examined.
    pub fault_sets_checked: usize,
    /// Number of (fault set, edge) pairs whose stretch was checked.
    pub pairs_checked: usize,
    /// All violations found (empty when the spanner is valid for every fault
    /// set examined).
    pub violations: Vec<Violation>,
    /// The maximum ratio `d_{H\F}(u, v) / w(u, v)` observed over all checked
    /// pairs (0 when nothing was checked).
    pub max_stretch: f64,
}

impl VerificationReport {
    /// Returns `true` when no violation was found.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Verifies that `spanner` is an `f`-fault-tolerant `(2k − 1)`-spanner of
/// `graph` under the given parameters.
///
/// The spanner must be a subgraph of `graph` over the same vertex set; edge
/// fault identifiers always refer to `graph` and are translated to the
/// spanner by endpoints.
///
/// # Panics
///
/// Panics if the two graphs have different vertex counts.
#[must_use]
pub fn verify_spanner(
    graph: &Graph,
    spanner: &Graph,
    params: SpannerParams,
    mode: VerificationMode,
) -> VerificationReport {
    verify_spanner_with(&mut DijkstraScratch::new(), graph, spanner, params, mode)
}

/// Like [`verify_spanner`] but running every shortest-path computation on
/// caller-owned [`DijkstraScratch`] buffers — the form churn loops use,
/// verifying after every wave without re-growing per-run state. The report
/// is identical to [`verify_spanner`]'s (unit-weight views take the
/// bucket-queue lane either way; its distances are bit-identical).
///
/// # Panics
///
/// Panics if the two graphs have different vertex counts.
#[must_use]
pub fn verify_spanner_with(
    scratch: &mut DijkstraScratch,
    graph: &Graph,
    spanner: &Graph,
    params: SpannerParams,
    mode: VerificationMode,
) -> VerificationReport {
    assert_eq!(
        graph.vertex_count(),
        spanner.vertex_count(),
        "spanner must be over the same vertex set as the input graph"
    );
    let fault_sets = fault_sets_for_mode(graph, spanner, params, &mode);
    let mut report = VerificationReport::default();
    for fault_set in &fault_sets {
        check_fault_set(graph, spanner, params, fault_set, scratch, &mut report);
    }
    report
}

/// Verifies the spanner property under one specific fault set, returning any
/// violations found. Useful for replaying a reported violation.
#[must_use]
pub fn verify_under_fault_set(
    graph: &Graph,
    spanner: &Graph,
    params: SpannerParams,
    fault_set: &FaultSet,
) -> VerificationReport {
    let mut report = VerificationReport::default();
    let mut scratch = DijkstraScratch::new();
    check_fault_set(graph, spanner, params, fault_set, &mut scratch, &mut report);
    report
}

/// Measures the worst observed stretch of `spanner` with no faults applied,
/// over all edges of `graph` (a cheap sanity metric used by examples and the
/// experiment harness).
#[must_use]
pub fn fault_free_stretch(graph: &Graph, spanner: &Graph) -> f64 {
    let params = SpannerParams::vertex(1, 0);
    let mut report = VerificationReport::default();
    let mut scratch = DijkstraScratch::new();
    check_fault_set(
        graph,
        spanner,
        params,
        &FaultSet::empty(FaultModel::Vertex),
        &mut scratch,
        &mut report,
    );
    report.max_stretch
}

/// The exact random/adversarial split [`VerificationMode::Sampled`] uses
/// for a given sample count: `(random, adversarial)`.
///
/// Always sums to `samples`; an odd count deterministically puts the extra
/// sample in the **random** half. (An earlier revision derived the
/// adversarial count from loop bounds, which silently handed the odd sample
/// to the adversarial half — the opposite of the documented "half random,
/// half adversarial" promise with no recorded tie-break. The split is part
/// of [`crate::verify`]'s reproducibility contract: churn loops key their
/// escalation decisions on these samples via `ChurnConfig::verify_seed`.)
#[must_use]
pub fn sampled_split(samples: usize) -> (usize, usize) {
    let adversarial = samples / 2;
    (samples - adversarial, adversarial)
}

fn fault_sets_for_mode(
    graph: &Graph,
    spanner: &Graph,
    params: SpannerParams,
    mode: &VerificationMode,
) -> Vec<FaultSet> {
    match mode {
        VerificationMode::Exhaustive => {
            enumerate_fault_sets(graph, params.fault_model(), params.f() as usize, &[])
        }
        VerificationMode::Sampled { samples, seed } => {
            let mut rng = StdRng::seed_from_u64(*seed);
            let (uniform, adversarial) = sampled_split(*samples);
            let mut sets = Vec::with_capacity(*samples + 1);
            sets.push(FaultSet::empty(params.fault_model()));
            for _ in 0..uniform {
                sets.push(sample_fault_set(
                    graph,
                    params.fault_model(),
                    params.f() as usize,
                    &[],
                    &mut rng,
                ));
            }
            for _ in 0..adversarial {
                sets.push(adversarial_fault_set(graph, spanner, params, &mut rng));
            }
            sets
        }
    }
}

/// Builds a targeted fault set: pick a random edge `{u, v}` of `G`, walk the
/// current shortest path between `u` and `v` in `H`, and fault its interior
/// vertices (or its edges), filling up with random faults if the path is
/// short. This is the natural "attack" heuristic against a spanner.
fn adversarial_fault_set<R: Rng + ?Sized>(
    graph: &Graph,
    spanner: &Graph,
    params: SpannerParams,
    rng: &mut R,
) -> FaultSet {
    let f = params.f() as usize;
    if graph.edge_count() == 0 || f == 0 {
        return FaultSet::empty(params.fault_model());
    }
    let edge_idx = rng.gen_range(0..graph.edge_count());
    let (u, v) = graph.edge(ftspan_graph::EdgeId::new(edge_idx)).endpoints();
    let path = ftspan_graph::bfs::shortest_hop_path(spanner, u, v);
    match params.fault_model() {
        FaultModel::Vertex => {
            let mut chosen: Vec<VertexId> = path
                .as_ref()
                .map(|p| p.interior_vertices().to_vec())
                .unwrap_or_default();
            chosen.shuffle(rng);
            chosen.truncate(f);
            // Top up with random non-terminal vertices.
            while chosen.len() < f {
                let cand = VertexId::new(rng.gen_range(0..graph.vertex_count().max(1)));
                if cand != u && cand != v && !chosen.contains(&cand) {
                    chosen.push(cand);
                } else if graph.vertex_count() <= f + 2 {
                    break;
                }
            }
            FaultSet::vertices(chosen)
        }
        FaultModel::Edge => {
            // Translate path edges (which live in the spanner) back to input
            // graph identifiers, then top up with random edges of G.
            let mut chosen: Vec<ftspan_graph::EdgeId> = path
                .as_ref()
                .map(|p| {
                    p.edges
                        .iter()
                        .filter_map(|&e| {
                            let (a, b) = spanner.edge(e).endpoints();
                            graph.edge_between(a, b)
                        })
                        .collect()
                })
                .unwrap_or_default();
            chosen.shuffle(rng);
            chosen.truncate(f);
            let mut guard = 0;
            while chosen.len() < f && guard < 10 * f + 10 {
                guard += 1;
                let cand = ftspan_graph::EdgeId::new(rng.gen_range(0..graph.edge_count()));
                if !chosen.contains(&cand) {
                    chosen.push(cand);
                }
            }
            FaultSet::edges(chosen)
        }
    }
}

fn check_fault_set(
    graph: &Graph,
    spanner: &Graph,
    params: SpannerParams,
    fault_set: &FaultSet,
    scratch: &mut DijkstraScratch,
    report: &mut VerificationReport,
) {
    report.fault_sets_checked += 1;
    let stretch = f64::from(params.stretch());

    // Apply the fault set to both graphs. Edge fault identifiers refer to the
    // input graph; translate them for the spanner.
    let view_g: FaultView<'_> = fault_set.apply(graph);
    let spanner_faults = fault_set.translate_edges(graph, spanner);
    let view_h: FaultView<'_> = spanner_faults.apply(spanner);

    // Distances in H \ F from every vertex that is an endpoint of a surviving
    // G-edge. Cache per-source Dijkstra runs lazily.
    let mut h_dist_cache: Vec<Option<Vec<f64>>> = vec![None; graph.vertex_count()];
    let mut g_dist_cache: Vec<Option<Vec<f64>>> = vec![None; graph.vertex_count()];

    for (edge_id, edge) in graph.edges() {
        let (u, v) = edge.endpoints();
        // Skip pairs involving faulted elements.
        if !view_g.contains_vertex(u) || !view_g.contains_vertex(v) {
            continue;
        }
        if fault_set.contains_edge(edge_id) {
            continue;
        }
        // Lemma 3: only edges that are themselves shortest paths in G \ F
        // need to be checked (for unit weights this is automatic).
        if !graph.is_unit_weighted() {
            let dist_g = g_dist_cache[u.index()]
                .get_or_insert_with(|| scratch.distances(&view_g, u).to_vec());
            if dist_g[v.index()] + 1e-9 < edge.weight() {
                continue;
            }
        }
        let dist_h =
            h_dist_cache[u.index()].get_or_insert_with(|| scratch.distances(&view_h, u).to_vec());
        let observed = dist_h[v.index()];
        let allowed = stretch * edge.weight();
        report.pairs_checked += 1;
        if observed.is_finite() && edge.weight() > 0.0 {
            report.max_stretch = report.max_stretch.max(observed / edge.weight());
        }
        if observed > allowed + 1e-9 {
            report.violations.push(Violation {
                fault_set: fault_set.clone(),
                u,
                v,
                allowed,
                observed: observed.is_finite().then_some(observed),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generators, vid};

    /// Spanner equal to the graph itself is always valid.
    #[test]
    fn identity_spanner_is_always_valid() {
        let g = generators::complete(8);
        let params = SpannerParams::vertex(2, 2);
        let report = verify_spanner(&g, &g.clone(), params, VerificationMode::Exhaustive);
        assert!(report.is_valid());
        assert!(report.fault_sets_checked > 1);
        assert!(report.max_stretch <= 1.0 + 1e-9);
    }

    #[test]
    fn spanning_tree_of_cycle_is_a_valid_nonft_spanner_only_for_large_stretch() {
        let g = generators::cycle(6);
        // Drop one edge: the remaining path is a 5-spanner (k=3) but not a
        // 3-spanner (k=2) of the cycle.
        let keep: Vec<_> = g.edge_ids().take(5).collect();
        let h = g.edge_subgraph(keep);
        let ok = verify_spanner(
            &g,
            &h,
            SpannerParams::vertex(3, 0),
            VerificationMode::Exhaustive,
        );
        assert!(ok.is_valid());
        let bad = verify_spanner(
            &g,
            &h,
            SpannerParams::vertex(2, 0),
            VerificationMode::Exhaustive,
        );
        assert!(!bad.is_valid());
        assert!(bad.max_stretch >= 5.0 - 1e-9);
    }

    #[test]
    fn non_fault_tolerant_spanner_is_caught_by_vertex_faults() {
        // K4: the star around vertex 0 is a valid 3-spanner with no faults,
        // but faulting vertex 0 disconnects it while K4 \ {0} stays connected.
        let g = generators::complete(4);
        let star_edges: Vec<_> = g
            .edge_ids()
            .filter(|&e| g.edge(e).is_incident_to(vid(0)))
            .collect();
        let star = g.edge_subgraph(star_edges);
        let no_faults = verify_spanner(
            &g,
            &star,
            SpannerParams::vertex(2, 0),
            VerificationMode::Exhaustive,
        );
        assert!(no_faults.is_valid());
        let with_faults = verify_spanner(
            &g,
            &star,
            SpannerParams::vertex(2, 1),
            VerificationMode::Exhaustive,
        );
        assert!(!with_faults.is_valid());
        let violation = &with_faults.violations[0];
        assert!(violation.fault_set.contains_vertex(vid(0)));
        assert!(violation.observed.is_none());
    }

    #[test]
    fn edge_fault_model_catches_missing_redundancy() {
        // Cycle C4 plus chord {0,2}; spanner = the cycle only. With one edge
        // fault on {0,1}, the pair (0,1) must be spanned within 3 hops:
        // 0-3-2-1 has 3 hops, fine for k=2. But for k=1 (stretch 1) it fails
        // even without faults unless the spanner contains every edge.
        let mut g = generators::cycle(4);
        g.add_unit_edge(0, 2);
        let cycle_edges: Vec<_> = g.edge_ids().take(4).collect();
        let h = g.edge_subgraph(cycle_edges);
        let ok = verify_spanner(
            &g,
            &h,
            SpannerParams::edge(2, 1),
            VerificationMode::Exhaustive,
        );
        assert!(ok.is_valid());
        let bad = verify_spanner(
            &g,
            &h,
            SpannerParams::edge(1, 0),
            VerificationMode::Exhaustive,
        );
        assert!(!bad.is_valid());
    }

    #[test]
    fn exhaustive_checks_expected_number_of_fault_sets() {
        let g = generators::complete(6);
        let params = SpannerParams::vertex(2, 2);
        let report = verify_spanner(&g, &g.clone(), params, VerificationMode::Exhaustive);
        // C(6,0) + C(6,1) + C(6,2) = 1 + 6 + 15.
        assert_eq!(report.fault_sets_checked, 22);
    }

    #[test]
    fn sampled_mode_is_reproducible_and_counts_sets() {
        let g = generators::complete(10);
        let params = SpannerParams::vertex(2, 2);
        let mode = VerificationMode::Sampled {
            samples: 10,
            seed: 99,
        };
        let a = verify_spanner(&g, &g.clone(), params, mode.clone());
        let b = verify_spanner(&g, &g.clone(), params, mode);
        assert_eq!(a.fault_sets_checked, 11); // samples + empty set
        assert_eq!(a.fault_sets_checked, b.fault_sets_checked);
        assert_eq!(a.pairs_checked, b.pairs_checked);
        assert!(a.is_valid());
    }

    #[test]
    fn sampled_split_is_exact_for_every_count() {
        // Regression for the odd-count split: an earlier revision derived
        // the adversarial count from loop bounds, silently handing every
        // odd count's extra sample to the adversarial half. The split must
        // sum exactly and put the documented extra in the random half.
        for samples in 0..100 {
            let (random, adversarial) = sampled_split(samples);
            assert_eq!(
                random + adversarial,
                samples,
                "no sample dropped or duplicated"
            );
            assert!(random >= adversarial, "odd counts favour the random half");
            assert!(random - adversarial <= 1, "split is as even as possible");
        }
        assert_eq!(sampled_split(16), (8, 8));
        assert_eq!(sampled_split(17), (9, 8));
        assert_eq!(sampled_split(1), (1, 0));
        assert_eq!(sampled_split(0), (0, 0));
    }

    #[test]
    fn odd_sampled_counts_are_deterministic_under_the_seed() {
        let g = generators::complete(12);
        let params = SpannerParams::vertex(2, 2);
        let mode = VerificationMode::Sampled {
            samples: 13,
            seed: 0x000C_4151_77AE,
        };
        let a = verify_spanner(&g, &g.clone(), params, mode.clone());
        let b = verify_spanner(&g, &g.clone(), params, mode);
        // samples + the always-checked empty set, twice over.
        assert_eq!(a.fault_sets_checked, 14);
        assert_eq!(b.fault_sets_checked, 14);
        assert_eq!(a.pairs_checked, b.pairs_checked);
        assert_eq!(a.max_stretch, b.max_stretch);
    }

    #[test]
    fn pooled_verifier_matches_one_shot_reports() {
        let g = generators::cycle(8);
        let h = g.edge_subgraph(g.edge_ids().take(7));
        let params = SpannerParams::vertex(2, 1);
        let mode = VerificationMode::Sampled {
            samples: 9,
            seed: 4,
        };
        let one_shot = verify_spanner(&g, &h, params, mode.clone());
        let mut scratch = DijkstraScratch::new();
        // Two runs on one scratch: identical to each other and to one-shot.
        let first = verify_spanner_with(&mut scratch, &g, &h, params, mode.clone());
        let second = verify_spanner_with(&mut scratch, &g, &h, params, mode);
        for report in [&first, &second] {
            assert_eq!(report.is_valid(), one_shot.is_valid());
            assert_eq!(report.fault_sets_checked, one_shot.fault_sets_checked);
            assert_eq!(report.pairs_checked, one_shot.pairs_checked);
            assert_eq!(report.max_stretch, one_shot.max_stretch);
            assert_eq!(report.violations.len(), one_shot.violations.len());
        }
    }

    #[test]
    fn sampled_mode_finds_obvious_violations() {
        // Spanner missing a bridge is caught even by sampling (the empty
        // fault set already witnesses it).
        let g = generators::path(5);
        let h = g.edge_subgraph(g.edge_ids().take(3));
        let report = verify_spanner(
            &g,
            &h,
            SpannerParams::vertex(2, 1),
            VerificationMode::Sampled {
                samples: 4,
                seed: 1,
            },
        );
        assert!(!report.is_valid());
    }

    #[test]
    fn weighted_lemma_3_restriction_skips_non_shortest_edges() {
        // Triangle with a heavy edge {0,2}: w(0,1)=1, w(1,2)=1, w(0,2)=5.
        // A spanner that drops {0,2} is a valid 1-VFT 3-spanner: the heavy
        // edge is not a shortest path in G (2 < 5), so Lemma 3 never requires
        // it to be spanned tightly... but with stretch 3 the path 0-1-2 of
        // weight 2 <= 3*5 anyway. Use stretch 1 to exercise the skip: the
        // only way this is valid is if the checker applies the restriction.
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 2, 5.0);
        let h = g.edge_subgraph(g.edge_ids().take(2));
        let report = verify_spanner(
            &g,
            &h,
            SpannerParams::vertex(1, 0),
            VerificationMode::Exhaustive,
        );
        assert!(report.is_valid(), "violations: {:?}", report.violations);
    }

    #[test]
    fn fault_free_stretch_of_subgraph() {
        let g = generators::cycle(8);
        let h = g.edge_subgraph(g.edge_ids().take(7));
        let s = fault_free_stretch(&g, &h);
        assert!((s - 7.0).abs() < 1e-9);
        assert!((fault_free_stretch(&g, &g.clone()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn verify_under_specific_fault_set() {
        let g = generators::cycle(5);
        let h = g.edge_subgraph(g.edge_ids().take(4)); // path 0-1-2-3-4
        let fs = FaultSet::vertices([vid(2)]);
        let report = verify_under_fault_set(&g, &h, SpannerParams::vertex(2, 1), &fs);
        // Removing vertex 2 splits the path; pair (0,4) is an edge of G that
        // survives in G\F but is disconnected in H\F.
        assert!(!report.is_valid());
        assert_eq!(report.fault_sets_checked, 1);
    }

    #[test]
    #[should_panic(expected = "same vertex set")]
    fn mismatched_vertex_sets_panic() {
        let g = generators::path(4);
        let h = generators::path(5);
        let _ = verify_spanner(
            &g,
            &h,
            SpannerParams::vertex(2, 0),
            VerificationMode::Exhaustive,
        );
    }
}
