//! A fluent front-end over every spanner construction in the crate.

use ftspan_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::baswana_sen::baswana_sen_spanner;
use crate::dk::{dk_spanner, dk_spanner_baswana_sen};
use crate::error::Result;
use crate::greedy_exact::{exact_greedy_spanner_with, ExactGreedyOptions};
use crate::greedy_poly::{poly_greedy_spanner_with, PolyGreedyOptions};
use crate::nonft::greedy_spanner;
use crate::stats::SpannerResult;
use crate::{FaultModel, SpannerParams};

/// Which construction the [`SpannerBuilder`] should run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The paper's polynomial-time modified greedy (Algorithms 3/4).
    #[default]
    PolyGreedy,
    /// The exponential-time exact greedy of [BDPW18, BP19] (Algorithm 1).
    ExactGreedy,
    /// The classical non-fault-tolerant greedy of [ADD+93] (`f` is ignored).
    ClassicGreedy,
    /// The Baswana–Sen randomized spanner [BS07] (`f` is ignored).
    BaswanaSen,
    /// Dinitz–Krauthgamer [DK11] with the classical greedy inside.
    DinitzKrauthgamer,
    /// Dinitz–Krauthgamer [DK11] with Baswana–Sen inside (the CONGEST combo).
    DinitzKrauthgamerBaswanaSen,
}

/// Fluent builder configuring and running a spanner construction.
///
/// # Examples
///
/// ```
/// use ftspan::{Algorithm, SpannerBuilder};
/// use ftspan_graph::generators;
///
/// let g = generators::complete(25);
/// let result = SpannerBuilder::new(2, 1)
///     .algorithm(Algorithm::PolyGreedy)
///     .collect_certificates(true)
///     .build(&g)
///     .unwrap();
/// assert!(result.spanner.edge_count() < g.edge_count());
/// ```
#[derive(Clone, Debug)]
pub struct SpannerBuilder {
    params: SpannerParams,
    algorithm: Algorithm,
    seed: u64,
    collect_certificates: bool,
    exact_budget: u128,
}

impl SpannerBuilder {
    /// Creates a builder targeting an `f`-VFT `(2k − 1)`-spanner built by the
    /// polynomial-time modified greedy algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: u32, f: u32) -> Self {
        Self {
            params: SpannerParams::vertex(k, f),
            algorithm: Algorithm::default(),
            seed: 0xF75A_2020,
            collect_certificates: false,
            exact_budget: ExactGreedyOptions::default().enumeration_budget,
        }
    }

    /// Creates a builder from already-validated parameters.
    #[must_use]
    pub fn from_params(params: SpannerParams) -> Self {
        let mut builder = Self::new(params.k(), params.f());
        builder.params = params;
        builder
    }

    /// Selects the construction algorithm.
    #[must_use]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects vertex or edge fault tolerance.
    #[must_use]
    pub fn fault_model(mut self, model: FaultModel) -> Self {
        self.params = self.params.with_fault_model(model);
        self
    }

    /// Sets the RNG seed used by randomized constructions.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables recording of LBC certificates (modified greedy only).
    #[must_use]
    pub fn collect_certificates(mut self, collect: bool) -> Self {
        self.collect_certificates = collect;
        self
    }

    /// Sets the fault-set enumeration budget of the exact greedy algorithm.
    #[must_use]
    pub fn exact_enumeration_budget(mut self, budget: u128) -> Self {
        self.exact_budget = budget;
        self
    }

    /// The parameters the builder currently targets.
    #[must_use]
    pub fn params(&self) -> SpannerParams {
        self.params
    }

    /// Runs the selected construction on `graph`.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::SpannerError::ExactSearchBudgetExceeded`] from the
    /// exact greedy algorithm; every other construction is infallible.
    pub fn build(&self, graph: &Graph) -> Result<SpannerResult> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        match self.algorithm {
            Algorithm::PolyGreedy => {
                let options = PolyGreedyOptions {
                    collect_certificates: self.collect_certificates,
                    ..PolyGreedyOptions::default()
                };
                Ok(poly_greedy_spanner_with(graph, self.params, &options))
            }
            Algorithm::ExactGreedy => {
                let options = ExactGreedyOptions {
                    enumeration_budget: self.exact_budget,
                };
                exact_greedy_spanner_with(graph, self.params, &options)
            }
            Algorithm::ClassicGreedy => Ok(greedy_spanner(graph, self.params.k())),
            Algorithm::BaswanaSen => Ok(baswana_sen_spanner(graph, self.params.k(), &mut rng)),
            Algorithm::DinitzKrauthgamer => Ok(dk_spanner(
                graph,
                self.params.k(),
                self.params.f(),
                &mut rng,
            )),
            Algorithm::DinitzKrauthgamerBaswanaSen => Ok(dk_spanner_baswana_sen(
                graph,
                self.params.k(),
                self.params.f(),
                &mut rng,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_spanner, VerificationMode};
    use ftspan_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_algorithm_runs_and_produces_a_subgraph() {
        let mut rng = StdRng::seed_from_u64(60);
        let g = generators::connected_gnp(20, 0.4, &mut rng);
        for algorithm in [
            Algorithm::PolyGreedy,
            Algorithm::ExactGreedy,
            Algorithm::ClassicGreedy,
            Algorithm::BaswanaSen,
            Algorithm::DinitzKrauthgamer,
            Algorithm::DinitzKrauthgamerBaswanaSen,
        ] {
            let result = SpannerBuilder::new(2, 1)
                .algorithm(algorithm)
                .seed(7)
                .build(&g)
                .unwrap_or_else(|e| panic!("{algorithm:?} failed: {e}"));
            assert!(
                result.spanner.is_edge_subgraph_of(&g),
                "{algorithm:?} produced a non-subgraph"
            );
        }
    }

    #[test]
    fn fault_tolerant_algorithms_produce_valid_ft_spanners() {
        let mut rng = StdRng::seed_from_u64(61);
        let g = generators::connected_gnp(14, 0.4, &mut rng);
        let params = SpannerParams::vertex(2, 1);
        for algorithm in [
            Algorithm::PolyGreedy,
            Algorithm::ExactGreedy,
            Algorithm::DinitzKrauthgamer,
        ] {
            let result = SpannerBuilder::from_params(params)
                .algorithm(algorithm)
                .seed(11)
                .build(&g)
                .unwrap();
            let report = verify_spanner(&g, &result.spanner, params, VerificationMode::Exhaustive);
            assert!(report.is_valid(), "{algorithm:?}: {:?}", report.violations);
        }
    }

    #[test]
    fn builder_configures_fault_model_and_certificates() {
        let mut rng = StdRng::seed_from_u64(62);
        let g = generators::connected_gnp(12, 0.4, &mut rng);
        let result = SpannerBuilder::new(2, 1)
            .fault_model(FaultModel::Edge)
            .collect_certificates(true)
            .build(&g)
            .unwrap();
        assert_eq!(result.params.fault_model(), FaultModel::Edge);
        assert_eq!(result.certificates.len(), result.spanner.edge_count());
    }

    #[test]
    fn exact_budget_is_forwarded() {
        let g = generators::complete(25);
        let err = SpannerBuilder::new(2, 3)
            .algorithm(Algorithm::ExactGreedy)
            .exact_enumeration_budget(5)
            .build(&g);
        assert!(err.is_err());
    }

    #[test]
    fn same_seed_gives_identical_randomized_output() {
        let mut rng = StdRng::seed_from_u64(63);
        let g = generators::connected_gnp(30, 0.3, &mut rng);
        let a = SpannerBuilder::new(2, 1)
            .algorithm(Algorithm::BaswanaSen)
            .seed(5)
            .build(&g)
            .unwrap();
        let b = SpannerBuilder::new(2, 1)
            .algorithm(Algorithm::BaswanaSen)
            .seed(5)
            .build(&g)
            .unwrap();
        assert_eq!(a.spanner.edge_count(), b.spanner.edge_count());
        let ea: Vec<_> = a.spanner.edges().map(|(_, e)| e.endpoints()).collect();
        let eb: Vec<_> = b.spanner.edges().map(|(_, e)| e.endpoints()).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn params_accessor_reflects_configuration() {
        let b = SpannerBuilder::new(3, 2).fault_model(FaultModel::Edge);
        assert_eq!(b.params().k(), 3);
        assert_eq!(b.params().f(), 2);
        assert_eq!(b.params().fault_model(), FaultModel::Edge);
    }
}
