//! Error types for spanner construction.

use core::fmt;

/// Errors produced by the spanner construction APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpannerError {
    /// The stretch parameter `k` must be at least 1.
    InvalidStretchParameter {
        /// The rejected value.
        k: u32,
    },
    /// The exact greedy algorithm was asked to enumerate more fault sets than
    /// its configured budget allows; use the polynomial-time algorithm (or
    /// raise the budget) instead.
    ExactSearchBudgetExceeded {
        /// Number of candidate fault sets that would need to be enumerated.
        required: u128,
        /// The configured enumeration budget.
        budget: u128,
    },
    /// The requested construction needs a weighted graph but received a
    /// unit-weighted one, or vice versa. Currently only produced by
    /// constructions that explicitly demand unweighted input.
    UnsupportedWeights {
        /// Human-readable explanation.
        reason: &'static str,
    },
}

impl fmt::Display for SpannerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpannerError::InvalidStretchParameter { k } => {
                write!(f, "invalid stretch parameter k = {k}: k must be at least 1")
            }
            SpannerError::ExactSearchBudgetExceeded { required, budget } => write!(
                f,
                "exact greedy would enumerate {required} fault sets, exceeding the budget of {budget}"
            ),
            SpannerError::UnsupportedWeights { reason } => {
                write!(f, "unsupported edge weights: {reason}")
            }
        }
    }
}

impl std::error::Error for SpannerError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SpannerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_the_offending_values() {
        let e = SpannerError::InvalidStretchParameter { k: 0 };
        assert!(e.to_string().contains("k = 0"));
        let e = SpannerError::ExactSearchBudgetExceeded {
            required: 1_000_000,
            budget: 10,
        };
        assert!(e.to_string().contains("1000000"));
        assert!(e.to_string().contains("10"));
        let e = SpannerError::UnsupportedWeights { reason: "why" };
        assert!(e.to_string().contains("why"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn check<E: std::error::Error + Send + Sync + 'static>() {}
        check::<SpannerError>();
    }
}
