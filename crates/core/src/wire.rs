//! Binary wire codecs for the core spanner vocabulary.
//!
//! Extends the [`ftspan_graph::wire`] substrate to the types an oracle
//! snapshot has to carry besides the graphs themselves: [`FaultSet`]s (both
//! as query payloads on the server protocol and as certificate cuts),
//! [`SpannerParams`], and the LBC [`EdgeCertificate`]s that seed localized
//! repair. All encodings are little-endian, length-prefixed, and reject
//! structurally invalid input with a [`WireError`] instead of panicking —
//! these bytes cross process (and machine) boundaries.

use ftspan_graph::wire::{WireError, WireReader, WireWriter};
use ftspan_graph::{eid, vid};

use crate::{EdgeCertificate, FaultModel, FaultSet, SpannerParams};

/// Wire tag of [`FaultModel::Vertex`] / [`FaultSet::Vertices`].
const TAG_VERTEX: u8 = 0;
/// Wire tag of [`FaultModel::Edge`] / [`FaultSet::Edges`].
const TAG_EDGE: u8 = 1;

/// Encodes a fault model as one tag byte.
pub fn encode_fault_model(model: FaultModel, w: &mut WireWriter) {
    w.put_u8(match model {
        FaultModel::Vertex => TAG_VERTEX,
        FaultModel::Edge => TAG_EDGE,
    });
}

/// Decodes a fault model tag byte.
pub fn decode_fault_model(r: &mut WireReader<'_>) -> Result<FaultModel, WireError> {
    match r.u8()? {
        TAG_VERTEX => Ok(FaultModel::Vertex),
        TAG_EDGE => Ok(FaultModel::Edge),
        tag => Err(WireError::malformed(format!(
            "unknown fault model tag {tag}"
        ))),
    }
}

/// Encodes a fault set: the model tag, then the sorted element ids.
pub fn encode_fault_set(faults: &FaultSet, w: &mut WireWriter) {
    match faults {
        FaultSet::Vertices(vs) => {
            w.put_u8(TAG_VERTEX);
            w.put_len(vs.len());
            for &v in vs {
                w.put_u32(v.as_u32());
            }
        }
        FaultSet::Edges(es) => {
            w.put_u8(TAG_EDGE);
            w.put_len(es.len());
            for &e in es {
                w.put_u32(e.as_u32());
            }
        }
    }
}

/// Decodes a fault set. The constructors re-sort and de-duplicate, so the
/// decoded set is canonical even if the bytes were not.
pub fn decode_fault_set(r: &mut WireReader<'_>) -> Result<FaultSet, WireError> {
    let tag = r.u8()?;
    let len = r.len(4)?;
    match tag {
        TAG_VERTEX => {
            let mut vs = Vec::with_capacity(len);
            for _ in 0..len {
                vs.push(vid(r.u32()? as usize));
            }
            Ok(FaultSet::vertices(vs))
        }
        TAG_EDGE => {
            let mut es = Vec::with_capacity(len);
            for _ in 0..len {
                es.push(eid(r.u32()? as usize));
            }
            Ok(FaultSet::edges(es))
        }
        tag => Err(WireError::malformed(format!("unknown fault set tag {tag}"))),
    }
}

/// Encodes spanner parameters as `k`, `f`, and the fault model tag.
pub fn encode_params(params: SpannerParams, w: &mut WireWriter) {
    w.put_u32(params.k());
    w.put_u32(params.f());
    encode_fault_model(params.fault_model(), w);
}

/// Decodes spanner parameters, re-validating `k ≥ 1`.
pub fn decode_params(r: &mut WireReader<'_>) -> Result<SpannerParams, WireError> {
    let k = r.u32()?;
    let f = r.u32()?;
    let model = decode_fault_model(r)?;
    SpannerParams::new(k, f)
        .map(|p| p.with_fault_model(model))
        .map_err(|e| WireError::malformed(format!("invalid params: {e}")))
}

/// Encodes one LBC certificate: both edge ids plus the witnessing cut.
pub fn encode_certificate(cert: &EdgeCertificate, w: &mut WireWriter) {
    w.put_u32(cert.input_edge.as_u32());
    w.put_u32(cert.spanner_edge.as_u32());
    encode_fault_set(&cert.cut, w);
}

/// Decodes one LBC certificate.
pub fn decode_certificate(r: &mut WireReader<'_>) -> Result<EdgeCertificate, WireError> {
    Ok(EdgeCertificate {
        input_edge: eid(r.u32()? as usize),
        spanner_edge: eid(r.u32()? as usize),
        cut: decode_fault_set(r)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T>(
        value: &T,
        encode: impl Fn(&T, &mut WireWriter),
        decode: impl Fn(&mut WireReader<'_>) -> Result<T, WireError>,
    ) -> T {
        let mut w = WireWriter::new();
        encode(value, &mut w);
        let mut r = WireReader::new(w.as_slice());
        let decoded = decode(&mut r).expect("decodes");
        r.finish().expect("no trailing bytes");
        decoded
    }

    #[test]
    fn fault_sets_round_trip_canonically() {
        let vertex_set = FaultSet::vertices([vid(9), vid(2), vid(2), vid(4)]);
        let decoded = round_trip(&vertex_set, encode_fault_set, decode_fault_set);
        assert_eq!(decoded, vertex_set);

        let edge_set = FaultSet::edges([eid(7), eid(0)]);
        assert_eq!(
            round_trip(&edge_set, encode_fault_set, decode_fault_set),
            edge_set
        );

        let empty = FaultSet::empty(FaultModel::Edge);
        let decoded = round_trip(&empty, encode_fault_set, decode_fault_set);
        assert_eq!(decoded.model(), FaultModel::Edge);
        assert!(decoded.is_empty());
    }

    #[test]
    fn params_round_trip_and_revalidate() {
        for params in [SpannerParams::vertex(3, 2), SpannerParams::edge(2, 0)] {
            assert_eq!(
                round_trip(&params, |p, w| encode_params(*p, w), decode_params),
                params
            );
        }
        // k = 0 on the wire must be rejected, not constructed.
        let mut w = WireWriter::new();
        w.put_u32(0);
        w.put_u32(1);
        w.put_u8(0);
        assert!(decode_params(&mut WireReader::new(w.as_slice())).is_err());
    }

    #[test]
    fn certificates_round_trip() {
        let cert = EdgeCertificate {
            input_edge: eid(11),
            spanner_edge: eid(3),
            cut: FaultSet::vertices([vid(1), vid(5)]),
        };
        assert_eq!(
            round_trip(&cert, encode_certificate, decode_certificate),
            cert
        );
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let mut w = WireWriter::new();
        w.put_u8(9);
        w.put_len(0);
        assert!(decode_fault_set(&mut WireReader::new(w.as_slice())).is_err());
        assert!(decode_fault_model(&mut WireReader::new(&[7])).is_err());
    }
}
