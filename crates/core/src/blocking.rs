//! Blocking sets (Definition 2 / Lemma 6 of the paper) — the structural
//! object behind the size analysis of the modified greedy algorithm.
//!
//! A `t`-blocking set of a graph `H` is a set `B ⊆ V × E` such that for every
//! cycle `C` of `H` with at most `t` edges there is a pair `(x, e) ∈ B` with
//! both `x` and `e` on `C` (and `x` not an endpoint of `e`). Lemma 6 shows the
//! spanner returned by the modified greedy algorithm has a `(2k)`-blocking set
//! of size at most `(2k − 1) · f · |E(H)|`, built from the LBC certificates;
//! Lemma 7 then converts that into the `O(k · f^{1−1/k} · n^{1+1/k})` size
//! bound. This module materializes the blocking set from a construction run
//! and verifies the definition on small graphs (experiment E11).

use std::collections::HashSet;

use ftspan_graph::{EdgeId, Graph, VertexId};

use crate::stats::SpannerResult;

/// A set of (vertex, edge) pairs intended to block all short cycles.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockingSet {
    pairs: Vec<(VertexId, EdgeId)>,
}

impl BlockingSet {
    /// Creates a blocking set from explicit pairs.
    #[must_use]
    pub fn from_pairs<I: IntoIterator<Item = (VertexId, EdgeId)>>(pairs: I) -> Self {
        let mut pairs: Vec<_> = pairs.into_iter().collect();
        pairs.sort_unstable();
        pairs.dedup();
        Self { pairs }
    }

    /// Number of pairs in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Returns `true` if the set has no pairs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over the pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.pairs.iter().copied()
    }
}

/// Builds the blocking set of Lemma 6 from a modified-greedy run that was
/// executed with certificate collection enabled: `B = {(x, e) : e ∈ E(H),
/// x ∈ F_e}` where `F_e` is the LBC certificate recorded when `e` was added.
///
/// Only vertex-fault certificates contribute (the lemma is stated for vertex
/// faults); edge-fault certificates are ignored.
#[must_use]
pub fn blocking_set_from_certificates(result: &SpannerResult) -> BlockingSet {
    let mut pairs = Vec::new();
    for cert in &result.certificates {
        for &x in cert.cut.vertex_faults() {
            pairs.push((x, cert.spanner_edge));
        }
    }
    BlockingSet::from_pairs(pairs)
}

/// The size bound of Lemma 6: `(2k − 1) · f · |E(H)|`.
#[must_use]
pub fn lemma6_size_bound(spanner_edges: usize, k: u32, f: u32) -> usize {
    (2 * k as usize - 1) * f as usize * spanner_edges
}

/// Enumerates every simple cycle of `graph` with at most `max_len` edges.
///
/// Each cycle is reported once, as the list of its vertices in traversal
/// order starting from its smallest vertex. Exponential in `max_len`;
/// intended for the small instances used by tests and experiment E11.
#[must_use]
pub fn enumerate_short_cycles(graph: &Graph, max_len: usize) -> Vec<Vec<VertexId>> {
    let mut cycles = Vec::new();
    let mut path: Vec<VertexId> = Vec::new();
    let mut on_path = vec![false; graph.vertex_count()];
    for start_idx in 0..graph.vertex_count() {
        let start = VertexId::new(start_idx);
        path.push(start);
        on_path[start_idx] = true;
        extend_cycle_search(
            graph,
            start,
            start,
            max_len,
            &mut path,
            &mut on_path,
            &mut cycles,
        );
        on_path[start_idx] = false;
        path.pop();
    }
    cycles
}

fn extend_cycle_search(
    graph: &Graph,
    start: VertexId,
    current: VertexId,
    max_len: usize,
    path: &mut Vec<VertexId>,
    on_path: &mut [bool],
    cycles: &mut Vec<Vec<VertexId>>,
) {
    if path.len() > max_len {
        return;
    }
    for (next, _) in graph.neighbors(current) {
        if next == start && path.len() >= 3 {
            // Report each cycle exactly once: smallest vertex first, and the
            // second vertex smaller than the last to fix the orientation.
            if path[1] < path[path.len() - 1] {
                cycles.push(path.clone());
            }
            continue;
        }
        // Only allow vertices larger than the start so that every cycle is
        // rooted at its minimum vertex.
        if next <= start || on_path[next.index()] {
            continue;
        }
        if path.len() == max_len {
            continue;
        }
        path.push(next);
        on_path[next.index()] = true;
        extend_cycle_search(graph, start, next, max_len, path, on_path, cycles);
        on_path[next.index()] = false;
        path.pop();
    }
}

/// Checks Definition 2 directly: every cycle of `graph` with at most
/// `cycle_bound` edges contains some pair `(x, e)` of the blocking set with
/// `x` a vertex of the cycle, `e` an edge of the cycle, and `x ∉ e`.
///
/// Returns the list of violating cycles (empty when the blocking set is
/// valid). Exponential in `cycle_bound`; use on small graphs only.
#[must_use]
pub fn blocking_violations(
    graph: &Graph,
    blocking: &BlockingSet,
    cycle_bound: usize,
) -> Vec<Vec<VertexId>> {
    let pair_set: HashSet<(VertexId, EdgeId)> = blocking.iter().collect();
    let mut violations = Vec::new();
    for cycle in enumerate_short_cycles(graph, cycle_bound) {
        let vertices: HashSet<VertexId> = cycle.iter().copied().collect();
        let mut edges = Vec::with_capacity(cycle.len());
        for i in 0..cycle.len() {
            let u = cycle[i];
            let v = cycle[(i + 1) % cycle.len()];
            let e = graph
                .edge_between(u, v)
                .expect("consecutive cycle vertices must be adjacent");
            edges.push(e);
        }
        let blocked = edges.iter().any(|&e| {
            let (a, b) = graph.edge(e).endpoints();
            vertices
                .iter()
                .any(|&x| x != a && x != b && pair_set.contains(&(x, e)))
        });
        if !blocked {
            violations.push(cycle);
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy_poly::{poly_greedy_spanner_with, PolyGreedyOptions};
    use crate::SpannerParams;
    use ftspan_graph::{generators, vid};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cycle_enumeration_counts_known_graphs() {
        // A single 4-cycle.
        let g = generators::cycle(4);
        let cycles = enumerate_short_cycles(&g, 4);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 4);
        // K4 has 4 triangles and 3 four-cycles.
        let k4 = generators::complete(4);
        assert_eq!(enumerate_short_cycles(&k4, 3).len(), 4);
        assert_eq!(enumerate_short_cycles(&k4, 4).len(), 7);
        // A tree has no cycles.
        let t = generators::path(6);
        assert!(enumerate_short_cycles(&t, 6).is_empty());
    }

    #[test]
    fn cycle_enumeration_respects_length_bound() {
        let g = generators::cycle(6);
        assert!(enumerate_short_cycles(&g, 5).is_empty());
        assert_eq!(enumerate_short_cycles(&g, 6).len(), 1);
    }

    #[test]
    fn empty_blocking_set_is_violated_by_any_short_cycle() {
        let g = generators::cycle(4);
        let violations = blocking_violations(&g, &BlockingSet::default(), 4);
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn manual_blocking_set_on_a_square() {
        let g = generators::cycle(4);
        // Pair (v2, edge {0,1}) blocks the only 4-cycle: v2 is on it and is
        // not an endpoint of {0,1}.
        let e01 = g.edge_between(vid(0), vid(1)).unwrap();
        let b = BlockingSet::from_pairs([(vid(2), e01)]);
        assert!(blocking_violations(&g, &b, 4).is_empty());
        // A pair whose vertex is an endpoint of its edge does not count.
        let b = BlockingSet::from_pairs([(vid(0), e01)]);
        assert_eq!(blocking_violations(&g, &b, 4).len(), 1);
    }

    #[test]
    fn greedy_certificates_yield_a_valid_blocking_set() {
        // Lemma 6, checked directly: the blocking set extracted from the
        // modified greedy's certificates blocks every (2k)-cycle of H.
        let mut rng = StdRng::seed_from_u64(50);
        for seed in 0..3u64 {
            let mut local = StdRng::seed_from_u64(seed + 100);
            let g = generators::connected_gnp(16, 0.35, &mut local);
            let _ = &mut rng;
            let k = 2u32;
            let f = 1u32;
            let params = SpannerParams::vertex(k, f);
            let options = PolyGreedyOptions {
                collect_certificates: true,
                ..PolyGreedyOptions::default()
            };
            let result = poly_greedy_spanner_with(&g, params, &options);
            let blocking = blocking_set_from_certificates(&result);
            assert!(
                blocking.len() <= lemma6_size_bound(result.spanner.edge_count(), k, f),
                "blocking set larger than Lemma 6 allows"
            );
            let violations = blocking_violations(&result.spanner, &blocking, 2 * k as usize);
            assert!(
                violations.is_empty(),
                "seed {seed}: cycles not blocked: {violations:?}"
            );
        }
    }

    #[test]
    fn blocking_set_dedups_pairs() {
        let e = EdgeId::new(0);
        let b = BlockingSet::from_pairs([(vid(1), e), (vid(1), e), (vid(2), e)]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.iter().count(), 2);
    }

    #[test]
    fn lemma6_bound_formula() {
        assert_eq!(lemma6_size_bound(10, 2, 3), 3 * 3 * 10);
        assert_eq!(lemma6_size_bound(0, 5, 5), 0);
    }
}
