//! The randomized `(2k − 1)`-spanner of Baswana and Sen [BS07].
//!
//! The construction clusters vertices for `k − 1` phases, sampling clusters
//! with probability `n^{−1/k}` per phase and connecting unsampled vertices to
//! nearby clusters with their lightest edges, then joins every vertex to each
//! adjacent surviving cluster. It produces a `(2k − 1)`-spanner with
//! `O(k · n^{1+1/k})` edges in expectation, for arbitrary edge weights.
//!
//! In this workspace it plays two roles: a centralized baseline (Theorem 14 is
//! quoted by the paper as the CONGEST substrate) and the inner spanner plugged
//! into the Dinitz–Krauthgamer framework ([`crate::dk`]). The distributed
//! CONGEST implementation lives in `ftspan-distributed`; this module is the
//! sequential reference the distributed version is tested against.

use std::collections::BTreeMap;
use std::time::Instant;

use ftspan_graph::{EdgeId, Graph, VertexId};
use rand::Rng;

use crate::stats::{SpannerResult, SpannerStats};
use crate::SpannerParams;

/// Builds a Baswana–Sen `(2k − 1)`-spanner of `graph`.
///
/// The expected number of edges is `O(k · n^{1+1/k})`; the stretch guarantee
/// holds deterministically (for every random outcome).
///
/// # Examples
///
/// ```
/// use ftspan::baswana_sen::baswana_sen_spanner;
/// use ftspan_graph::generators;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let g = generators::complete(30);
/// let mut rng = StdRng::seed_from_u64(7);
/// let result = baswana_sen_spanner(&g, 2, &mut rng);
/// assert!(result.spanner.edge_count() < g.edge_count());
/// ```
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn baswana_sen_spanner<R: Rng + ?Sized>(graph: &Graph, k: u32, rng: &mut R) -> SpannerResult {
    assert!(k >= 1, "stretch parameter k must be at least 1");
    let start = Instant::now();
    let n = graph.vertex_count();
    let mut spanner = Graph::empty_like(graph);
    let mut stats = SpannerStats {
        algorithm: "baswana-sen",
        input_vertices: n,
        input_edges: graph.edge_count(),
        ..SpannerStats::default()
    };

    if k == 1 {
        // A 1-spanner must preserve distances exactly; keep every edge.
        spanner.union_edges_from(graph);
        stats.spanner_edges = spanner.edge_count();
        stats.elapsed = start.elapsed();
        return SpannerResult {
            spanner,
            params: SpannerParams::vertex(1, 0),
            stats,
            certificates: Vec::new(),
        };
    }

    let sample_probability = if n <= 1 {
        1.0
    } else {
        (n as f64).powf(-1.0 / f64::from(k))
    };

    // cluster[v] = Some(center) when v currently belongs to the cluster
    // centred at `center`; None when v has fallen out of the clustering.
    let mut cluster: Vec<Option<VertexId>> = (0..n).map(|v| Some(VertexId::new(v))).collect();
    // Edges still under consideration (not yet discarded by the algorithm).
    let mut alive: Vec<bool> = vec![true; graph.edge_count()];

    for _phase in 1..k {
        // 1. Sample the surviving clusters.
        let mut sampled: BTreeMap<VertexId, bool> = BTreeMap::new();
        for center in cluster.iter().flatten() {
            sampled
                .entry(*center)
                .or_insert_with(|| rng.gen_bool(sample_probability));
        }
        let is_sampled = |c: VertexId| -> bool { *sampled.get(&c).unwrap_or(&false) };

        let mut next_cluster: Vec<Option<VertexId>> = vec![None; n];
        for v in 0..n {
            if let Some(c) = cluster[v] {
                if is_sampled(c) {
                    next_cluster[v] = Some(c);
                }
            }
        }

        // 2. Re-home every vertex whose cluster was not sampled.
        for v_idx in 0..n {
            let v = VertexId::new(v_idx);
            let Some(cv) = cluster[v_idx] else { continue };
            if is_sampled(cv) {
                continue;
            }
            // Lightest alive edge from v to each adjacent cluster.
            let best = lightest_edges_by_cluster(graph, &cluster, &alive, v, cv);
            if best.is_empty() {
                continue;
            }
            let best_sampled = best
                .iter()
                .filter(|(c, _)| is_sampled(**c))
                .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0).then(a.1 .1.cmp(&b.1 .1)));
            match best_sampled {
                None => {
                    // No adjacent sampled cluster: connect to every adjacent
                    // cluster with its lightest edge and drop out.
                    for (_, e) in best.values() {
                        insert_edge(&mut spanner, graph, *e);
                    }
                    discard_edges_to_clusters(graph, &cluster, &mut alive, v, |_| true);
                }
                Some((&home, &(home_weight, home_edge))) => {
                    insert_edge(&mut spanner, graph, home_edge);
                    next_cluster[v_idx] = Some(home);
                    // Also connect to every strictly closer cluster, and
                    // discard the edges into those clusters and the new home.
                    for (c, (w, e)) in &best {
                        if *c != home && *w < home_weight {
                            insert_edge(&mut spanner, graph, *e);
                        }
                    }
                    discard_edges_to_clusters(graph, &cluster, &mut alive, v, |c| {
                        c == home || best.get(&c).is_some_and(|(w, _)| *w < home_weight)
                    });
                }
            }
        }

        cluster = next_cluster;

        // 3. Intra-cluster edges never need to be considered again.
        for (e_idx, alive_slot) in alive.iter_mut().enumerate() {
            if !*alive_slot {
                continue;
            }
            let (a, b) = graph.edge(EdgeId::new(e_idx)).endpoints();
            if let (Some(ca), Some(cb)) = (cluster[a.index()], cluster[b.index()]) {
                if ca == cb {
                    *alive_slot = false;
                }
            }
        }
    }

    // Phase 2: every vertex joins each adjacent surviving cluster with its
    // lightest remaining edge.
    for v_idx in 0..n {
        let v = VertexId::new(v_idx);
        let own = cluster[v_idx];
        let mut best: BTreeMap<VertexId, (f64, EdgeId)> = BTreeMap::new();
        for (w, e) in graph.neighbors(v) {
            if !alive[e.index()] {
                continue;
            }
            let Some(cw) = cluster[w.index()] else {
                continue;
            };
            if Some(cw) == own {
                continue;
            }
            let weight = graph.weight(e);
            let entry = best.entry(cw).or_insert((weight, e));
            if weight < entry.0 || (weight == entry.0 && e < entry.1) {
                *entry = (weight, e);
            }
        }
        for (_, (_, e)) in best {
            insert_edge(&mut spanner, graph, e);
        }
    }

    stats.spanner_edges = spanner.edge_count();
    stats.elapsed = start.elapsed();
    SpannerResult {
        spanner,
        params: SpannerParams::vertex(k, 0),
        stats,
        certificates: Vec::new(),
    }
}

/// Lightest alive edge from `v` to each adjacent cluster other than its own.
fn lightest_edges_by_cluster(
    graph: &Graph,
    cluster: &[Option<VertexId>],
    alive: &[bool],
    v: VertexId,
    own: VertexId,
) -> BTreeMap<VertexId, (f64, EdgeId)> {
    let mut best: BTreeMap<VertexId, (f64, EdgeId)> = BTreeMap::new();
    for (w, e) in graph.neighbors(v) {
        if !alive[e.index()] {
            continue;
        }
        let Some(cw) = cluster[w.index()] else {
            continue;
        };
        if cw == own {
            continue;
        }
        let weight = graph.weight(e);
        let entry = best.entry(cw).or_insert((weight, e));
        if weight < entry.0 || (weight == entry.0 && e < entry.1) {
            *entry = (weight, e);
        }
    }
    best
}

/// Discards every alive edge from `v` into a cluster selected by `select`.
fn discard_edges_to_clusters<F: Fn(VertexId) -> bool>(
    graph: &Graph,
    cluster: &[Option<VertexId>],
    alive: &mut [bool],
    v: VertexId,
    select: F,
) {
    for (w, e) in graph.neighbors(v) {
        if !alive[e.index()] {
            continue;
        }
        if let Some(cw) = cluster[w.index()] {
            if select(cw) {
                alive[e.index()] = false;
            }
        }
    }
}

fn insert_edge(spanner: &mut Graph, graph: &Graph, e: EdgeId) {
    let edge = graph.edge(e);
    let (u, v) = edge.endpoints();
    if spanner.edge_between(u, v).is_none() {
        spanner.add_edge(u.index(), v.index(), edge.weight());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use crate::verify::{verify_spanner, VerificationMode};
    use ftspan_graph::generators;
    use ftspan_graph::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_is_a_valid_spanner_on_unweighted_graphs() {
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::connected_gnp(25, 0.3, &mut rng);
            let result = baswana_sen_spanner(&g, 2, &mut rng);
            let report = verify_spanner(
                &g,
                &result.spanner,
                SpannerParams::vertex(2, 0),
                VerificationMode::Exhaustive,
            );
            assert!(report.is_valid(), "seed {seed}: {:?}", report.violations);
        }
    }

    #[test]
    fn output_is_a_valid_spanner_on_weighted_graphs() {
        let mut rng = StdRng::seed_from_u64(30);
        let base = generators::connected_gnp(20, 0.4, &mut rng);
        let g = generators::with_random_weights(&base, 1.0, 9.0, &mut rng);
        for k in [2u32, 3] {
            let result = baswana_sen_spanner(&g, k, &mut rng);
            let report = verify_spanner(
                &g,
                &result.spanner,
                SpannerParams::vertex(k, 0),
                VerificationMode::Exhaustive,
            );
            assert!(report.is_valid(), "k = {k}: {:?}", report.violations);
        }
    }

    #[test]
    fn connected_input_gives_connected_output() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = generators::connected_gnp(50, 0.15, &mut rng);
        let result = baswana_sen_spanner(&g, 3, &mut rng);
        assert!(is_connected(&result.spanner));
    }

    #[test]
    fn size_is_in_the_ballpark_of_the_expected_bound() {
        let mut rng = StdRng::seed_from_u64(32);
        let g = generators::complete(80);
        let result = baswana_sen_spanner(&g, 2, &mut rng);
        // Expected O(k n^{1+1/k}); allow a factor of 4 for variance with this
        // fixed seed. K_80 has 3160 edges so this is still a real reduction.
        let bound = 4.0 * bounds::baswana_sen_size_bound(80, 2);
        assert!((result.spanner.edge_count() as f64) < bound);
        assert!(result.spanner.edge_count() < g.edge_count());
    }

    #[test]
    fn k_equal_one_returns_the_whole_graph() {
        let mut rng = StdRng::seed_from_u64(33);
        let g = generators::complete(10);
        let result = baswana_sen_spanner(&g, 1, &mut rng);
        assert_eq!(result.spanner.edge_count(), g.edge_count());
    }

    #[test]
    fn spanner_is_a_subgraph_preserving_weights() {
        let mut rng = StdRng::seed_from_u64(34);
        let base = generators::connected_gnp(30, 0.3, &mut rng);
        let g = generators::with_random_weights(&base, 1.0, 3.0, &mut rng);
        let result = baswana_sen_spanner(&g, 2, &mut rng);
        assert!(result.spanner.is_edge_subgraph_of(&g));
        for (_, e) in result.spanner.edges() {
            let orig = g.edge_between(e.source(), e.target()).unwrap();
            assert_eq!(g.weight(orig), e.weight());
        }
    }

    #[test]
    fn handles_disconnected_and_tiny_inputs() {
        let mut rng = StdRng::seed_from_u64(35);
        let g = Graph::new(0);
        assert_eq!(baswana_sen_spanner(&g, 2, &mut rng).spanner.edge_count(), 0);
        let g = Graph::new(5);
        assert_eq!(baswana_sen_spanner(&g, 2, &mut rng).spanner.edge_count(), 0);
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1);
        g.add_unit_edge(2, 3);
        let result = baswana_sen_spanner(&g, 2, &mut rng);
        // Both components must be spanned (here: both edges kept).
        assert_eq!(result.spanner.edge_count(), 2);
    }

    #[test]
    fn stats_record_algorithm_name_and_sizes() {
        let mut rng = StdRng::seed_from_u64(36);
        let g = generators::complete(20);
        let result = baswana_sen_spanner(&g, 2, &mut rng);
        assert_eq!(result.stats.algorithm, "baswana-sen");
        assert_eq!(result.stats.input_edges, 190);
        assert_eq!(result.stats.spanner_edges, result.spanner.edge_count());
    }
}
