//! Fault sets: the sets `F` of failed vertices or edges that a fault-tolerant
//! spanner must survive.

use ftspan_graph::{EdgeId, FaultView, Graph, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::FaultModel;

/// A concrete set of failed vertices or failed edges.
///
/// # Examples
///
/// ```
/// use ftspan::FaultSet;
/// use ftspan_graph::{vid, Graph, GraphView};
///
/// let mut g = Graph::new(4);
/// g.add_unit_edge(0, 1);
/// g.add_unit_edge(1, 2);
/// let faults = FaultSet::vertices([vid(1)]);
/// let view = faults.apply(&g);
/// assert_eq!(view.live_vertex_count(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FaultSet {
    /// A set of failed vertices.
    Vertices(Vec<VertexId>),
    /// A set of failed edges.
    Edges(Vec<EdgeId>),
}

impl FaultSet {
    /// Creates an empty fault set for the given model.
    #[must_use]
    pub fn empty(model: FaultModel) -> Self {
        match model {
            FaultModel::Vertex => FaultSet::Vertices(Vec::new()),
            FaultModel::Edge => FaultSet::Edges(Vec::new()),
        }
    }

    /// Creates a vertex fault set.
    #[must_use]
    pub fn vertices<I: IntoIterator<Item = VertexId>>(vertices: I) -> Self {
        let mut v: Vec<VertexId> = vertices.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        FaultSet::Vertices(v)
    }

    /// Creates an edge fault set.
    #[must_use]
    pub fn edges<I: IntoIterator<Item = EdgeId>>(edges: I) -> Self {
        let mut e: Vec<EdgeId> = edges.into_iter().collect();
        e.sort_unstable();
        e.dedup();
        FaultSet::Edges(e)
    }

    /// The fault model this set belongs to.
    #[must_use]
    pub fn model(&self) -> FaultModel {
        match self {
            FaultSet::Vertices(_) => FaultModel::Vertex,
            FaultSet::Edges(_) => FaultModel::Edge,
        }
    }

    /// Number of faults in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            FaultSet::Vertices(v) => v.len(),
            FaultSet::Edges(e) => e.len(),
        }
    }

    /// Returns `true` if no element is faulted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The faulted vertices, or an empty slice for an edge fault set.
    #[must_use]
    pub fn vertex_faults(&self) -> &[VertexId] {
        match self {
            FaultSet::Vertices(v) => v,
            FaultSet::Edges(_) => &[],
        }
    }

    /// The faulted edges, or an empty slice for a vertex fault set.
    #[must_use]
    pub fn edge_faults(&self) -> &[EdgeId] {
        match self {
            FaultSet::Vertices(_) => &[],
            FaultSet::Edges(e) => e,
        }
    }

    /// Returns `true` if the given vertex is faulted (always `false` for edge
    /// fault sets).
    #[must_use]
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.vertex_faults().contains(&v)
    }

    /// Returns `true` if the given edge is faulted (always `false` for vertex
    /// fault sets).
    #[must_use]
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edge_faults().contains(&e)
    }

    /// Applies this fault set to a graph, producing the view `G \ F`.
    ///
    /// Edge faults are matched *by endpoints*, not by raw edge id, so a fault
    /// set built from the input graph `G` can be applied to a spanner `H`
    /// whose edge ids differ. Faulted edges missing from the target graph are
    /// silently ignored (they cannot hurt it).
    #[must_use]
    pub fn apply<'g>(&self, graph: &'g Graph) -> FaultView<'g> {
        let mut view = FaultView::new(graph);
        self.apply_to(&mut view);
        view
    }

    /// Applies this fault set to an existing view of a graph.
    ///
    /// See [`FaultSet::apply`] for the edge-matching semantics. Vertex faults
    /// beyond the view's vertex range are ignored.
    pub fn apply_to(&self, view: &mut FaultView<'_>) {
        match self {
            FaultSet::Vertices(vs) => {
                for &v in vs {
                    if v.index() < view.graph().vertex_count() {
                        view.block_vertex(v);
                    }
                }
            }
            FaultSet::Edges(es) => {
                // Edge ids are only meaningful relative to the graph they came
                // from. The contract used throughout this crate is that edge
                // fault ids refer to the *input* graph G; we translate them to
                // the target graph by endpoints when applying to a different
                // graph is needed. Here ids within range are applied directly.
                for &e in es {
                    if e.index() < view.graph().edge_count() {
                        view.block_edge(e);
                    }
                }
            }
        }
    }

    /// Re-expresses an edge fault set (whose ids refer to `source`) as edge
    /// ids of `target`, matching by endpoints and dropping edges `target`
    /// does not contain. Ids out of range for `source` are dropped too
    /// (mirroring the tolerance of [`FaultSet::apply_to`] — serving layers
    /// accept client-supplied fault sets that may be stale). Vertex fault
    /// sets are returned unchanged.
    #[must_use]
    pub fn translate_edges(&self, source: &Graph, target: &Graph) -> FaultSet {
        match self {
            FaultSet::Vertices(_) => self.clone(),
            FaultSet::Edges(es) => FaultSet::edges(es.iter().filter_map(|&e| {
                let (u, v) = source.get_edge(e)?.endpoints();
                target.edge_between(u, v)
            })),
        }
    }
}

/// Enumerates every fault set of size at most `max_size` over the given
/// universe of vertices, excluding the listed vertices (typically the two
/// terminals, which Definition 1 never allows to fail).
///
/// The number of sets is `sum_{i<=max_size} C(universe, i)`; callers are
/// expected to keep that small (exact greedy, exhaustive verification).
#[must_use]
pub fn enumerate_vertex_fault_sets(
    graph: &Graph,
    max_size: usize,
    exclude: &[VertexId],
) -> Vec<FaultSet> {
    let universe: Vec<VertexId> = graph.vertices().filter(|v| !exclude.contains(v)).collect();
    enumerate_subsets(&universe, max_size)
        .into_iter()
        .map(FaultSet::vertices)
        .collect()
}

/// Enumerates every edge fault set of size at most `max_size`, with edge ids
/// referring to `graph`.
#[must_use]
pub fn enumerate_edge_fault_sets(graph: &Graph, max_size: usize) -> Vec<FaultSet> {
    let universe: Vec<EdgeId> = graph.edge_ids().collect();
    enumerate_subsets(&universe, max_size)
        .into_iter()
        .map(FaultSet::edges)
        .collect()
}

/// Enumerates fault sets of size at most `max_size` for either model.
/// For the vertex model the `exclude` list is honoured; it is ignored for
/// edge faults.
#[must_use]
pub fn enumerate_fault_sets(
    graph: &Graph,
    model: FaultModel,
    max_size: usize,
    exclude: &[VertexId],
) -> Vec<FaultSet> {
    match model {
        FaultModel::Vertex => enumerate_vertex_fault_sets(graph, max_size, exclude),
        FaultModel::Edge => enumerate_edge_fault_sets(graph, max_size),
    }
}

/// Number of fault sets that [`enumerate_fault_sets`] would produce, computed
/// without materializing them (used to enforce enumeration budgets).
#[must_use]
pub fn count_fault_sets(universe: usize, max_size: usize) -> u128 {
    let mut total: u128 = 0;
    for i in 0..=max_size.min(universe) {
        total = total.saturating_add(binomial(universe as u128, i as u128));
    }
    total
}

fn binomial(n: u128, k: u128) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result.saturating_mul(n - i) / (i + 1);
    }
    result
}

fn enumerate_subsets<T: Copy>(universe: &[T], max_size: usize) -> Vec<Vec<T>> {
    let mut out = vec![Vec::new()];
    let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
    for _ in 1..=max_size.min(universe.len()) {
        let mut next = Vec::new();
        for combo in &frontier {
            let start = combo.last().map_or(0, |&i| i + 1);
            for j in start..universe.len() {
                let mut extended = combo.clone();
                extended.push(j);
                out.push(extended.iter().map(|&i| universe[i]).collect());
                next.push(extended);
            }
        }
        frontier = next;
    }
    out
}

/// Samples a uniformly random fault set of exactly `size` elements (or fewer
/// if the universe is smaller), excluding the listed vertices for the vertex
/// model.
#[must_use]
pub fn sample_fault_set<R: Rng + ?Sized>(
    graph: &Graph,
    model: FaultModel,
    size: usize,
    exclude: &[VertexId],
    rng: &mut R,
) -> FaultSet {
    match model {
        FaultModel::Vertex => {
            let mut universe: Vec<VertexId> =
                graph.vertices().filter(|v| !exclude.contains(v)).collect();
            universe.shuffle(rng);
            universe.truncate(size);
            FaultSet::vertices(universe)
        }
        FaultModel::Edge => {
            let mut universe: Vec<EdgeId> = graph.edge_ids().collect();
            universe.shuffle(rng);
            universe.truncate(size);
            FaultSet::edges(universe)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{eid, generators, vid, GraphView};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_deduplicates_and_sorts() {
        let f = FaultSet::vertices([vid(3), vid(1), vid(3)]);
        assert_eq!(f.vertex_faults(), &[vid(1), vid(3)]);
        assert_eq!(f.len(), 2);
        let f = FaultSet::edges([eid(2), eid(2), eid(0)]);
        assert_eq!(f.edge_faults(), &[eid(0), eid(2)]);
    }

    #[test]
    fn empty_sets_for_both_models() {
        assert!(FaultSet::empty(FaultModel::Vertex).is_empty());
        assert_eq!(
            FaultSet::empty(FaultModel::Vertex).model(),
            FaultModel::Vertex
        );
        assert_eq!(FaultSet::empty(FaultModel::Edge).model(), FaultModel::Edge);
    }

    #[test]
    fn membership_queries() {
        let f = FaultSet::vertices([vid(1), vid(2)]);
        assert!(f.contains_vertex(vid(1)));
        assert!(!f.contains_vertex(vid(5)));
        assert!(!f.contains_edge(eid(0)));
        let f = FaultSet::edges([eid(4)]);
        assert!(f.contains_edge(eid(4)));
        assert!(!f.contains_vertex(vid(4)));
    }

    #[test]
    fn apply_vertex_faults_blocks_them() {
        let g = generators::cycle(5);
        let view = FaultSet::vertices([vid(0), vid(2)]).apply(&g);
        assert_eq!(view.live_vertex_count(), 3);
        assert!(!view.contains_vertex(vid(0)));
        assert!(view.contains_vertex(vid(1)));
    }

    #[test]
    fn apply_edge_faults_blocks_them() {
        let g = generators::cycle(5);
        let e = g.edge_between(vid(0), vid(1)).unwrap();
        let view = FaultSet::edges([e]).apply(&g);
        assert!(!view.contains_edge(e));
        assert_eq!(view.live_vertex_count(), 5);
    }

    #[test]
    fn out_of_range_faults_are_ignored() {
        let g = generators::path(3);
        let view = FaultSet::vertices([vid(10)]).apply(&g);
        assert_eq!(view.live_vertex_count(), 3);
        let view = FaultSet::edges([eid(10)]).apply(&g);
        assert_eq!(view.blocked_edge_count(), 0);
    }

    #[test]
    fn translate_edges_matches_by_endpoints() {
        let g = generators::cycle(4);
        let mut h = Graph::new(4);
        h.add_unit_edge(1, 2);
        h.add_unit_edge(0, 1);
        let e_g = g.edge_between(vid(0), vid(1)).unwrap();
        let missing = g.edge_between(vid(2), vid(3)).unwrap();
        let f = FaultSet::edges([e_g, missing]);
        let t = f.translate_edges(&g, &h);
        assert_eq!(t.len(), 1);
        // Out-of-range source ids are dropped, not panicked on.
        let stale = FaultSet::edges([eid(999)]);
        assert!(stale.translate_edges(&g, &h).is_empty());
        let e_h = h.edge_between(vid(0), vid(1)).unwrap();
        assert!(t.contains_edge(e_h));
        // Vertex sets pass through untouched.
        let f = FaultSet::vertices([vid(2)]);
        assert_eq!(f.translate_edges(&g, &h), f);
    }

    #[test]
    fn enumeration_counts_match_binomials() {
        let g = generators::complete(5);
        // Vertex sets of size <= 2 excluding two terminals: C(3,0)+C(3,1)+C(3,2) = 7.
        let sets = enumerate_vertex_fault_sets(&g, 2, &[vid(0), vid(1)]);
        assert_eq!(sets.len(), 7);
        assert!(sets
            .iter()
            .all(|s| !s.contains_vertex(vid(0)) && !s.contains_vertex(vid(1))));
        // Edge sets of size <= 1 over 10 edges: 1 + 10.
        let sets = enumerate_edge_fault_sets(&g, 1);
        assert_eq!(sets.len(), 11);
        assert_eq!(count_fault_sets(3, 2), 7);
        assert_eq!(count_fault_sets(10, 1), 11);
    }

    #[test]
    fn enumeration_includes_empty_set_and_respects_model() {
        let g = generators::path(4);
        let sets = enumerate_fault_sets(&g, FaultModel::Vertex, 1, &[]);
        assert!(sets.iter().any(FaultSet::is_empty));
        assert_eq!(sets.len(), 1 + 4);
        let sets = enumerate_fault_sets(&g, FaultModel::Edge, 2, &[vid(0)]);
        assert_eq!(sets.len(), 1 + 3 + 3);
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        let g = generators::complete(6);
        let sets = enumerate_vertex_fault_sets(&g, 3, &[]);
        let mut seen = std::collections::HashSet::new();
        for s in &sets {
            assert!(seen.insert(format!("{s:?}")), "duplicate fault set {s:?}");
        }
        assert_eq!(sets.len(), 1 + 6 + 15 + 20);
    }

    #[test]
    fn binomial_saturates_instead_of_overflowing() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(2, 5), 0);
        assert!(count_fault_sets(10_000, 20) > 0);
    }

    #[test]
    fn sampled_fault_sets_have_requested_size_and_respect_exclusions() {
        let g = generators::complete(10);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let s = sample_fault_set(&g, FaultModel::Vertex, 3, &[vid(0)], &mut rng);
            assert_eq!(s.len(), 3);
            assert!(!s.contains_vertex(vid(0)));
        }
        let s = sample_fault_set(&g, FaultModel::Edge, 4, &[], &mut rng);
        assert_eq!(s.len(), 4);
        // Requesting more faults than the universe clamps.
        let small = generators::path(3);
        let s = sample_fault_set(&small, FaultModel::Edge, 10, &[], &mut rng);
        assert_eq!(s.len(), 2);
    }
}
