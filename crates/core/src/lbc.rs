//! The Length-Bounded Cut gap decision `LBC(t, α)` — Algorithm 2 of the paper.
//!
//! Given terminals `u, v`, a hop bound `t`, and a budget `α`, the decision
//! problem asks:
//!
//! * if there is a set `F` of at most `α` vertices (resp. edges), avoiding the
//!   terminals, whose removal leaves no `u`–`v` path of at most `t` hops, the
//!   answer must be **YES**;
//! * if every such cut needs more than `α · t` vertices (resp. edges), the
//!   answer must be **NO**;
//! * anything may be answered in between.
//!
//! Exact Length-Bounded Cut is NP-hard [Baier et al. 2006], but this gap
//! version is decided by the classical "frequency" heuristic for Hitting Set:
//! repeatedly find a path of at most `t` hops and delete all of it. If `α + 1`
//! rounds still find a path, answer NO (Theorem 4 of the paper shows this is
//! correct and runs in `O((m + n) · α)` time).

use ftspan_graph::bfs::{shortest_hop_path_within, HopBfsScratch, HopPath};
use ftspan_graph::{EdgeId, FaultScratch, FaultView, Graph, VertexId};

use crate::{FaultModel, FaultSet};

/// Outcome of the `LBC(t, α)` gap decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LbcDecision {
    /// There is no `u`–`v` path of at most `t` hops once the returned fault
    /// set is removed. The set has at most `α · (t − 1)` vertices (or `α · t`
    /// edges in the edge variant) and certifies that a small length-bounded
    /// cut exists — this is the certificate `F_e` used in Lemma 6.
    Yes(FaultSet),
    /// After `α + 1` path-deletion rounds a short path still survives, so
    /// every length-`t` cut has more than `α` elements (in fact the instance
    /// cannot have a cut of size ≤ α, by Theorem 4's argument).
    No,
}

impl LbcDecision {
    /// Returns `true` for the YES outcome.
    #[must_use]
    pub fn is_yes(&self) -> bool {
        matches!(self, LbcDecision::Yes(_))
    }

    /// Returns the certificate cut of a YES outcome.
    #[must_use]
    pub fn certificate(&self) -> Option<&FaultSet> {
        match self {
            LbcDecision::Yes(cut) => Some(cut),
            LbcDecision::No => None,
        }
    }
}

/// Counters describing one LBC decision run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LbcStats {
    /// Number of hop-bounded BFS passes this decision actually executed.
    ///
    /// For one decision this is at most `α + 1` (Algorithm 2's budget). The
    /// incremental engine ([`LbcScratch`]) can bring it *below* the
    /// from-scratch count — a first-round tree shared across same-source
    /// candidates is counted only by the decision that built it, and
    /// decisions answered entirely from the shared tree report `0`. Do not
    /// confuse this per-decision counter with the *aggregated* repair and
    /// construction counters ([`crate::SpannerStats::bfs_runs`]), which sum
    /// it over every LBC call of a sweep and therefore track total work, not
    /// a per-decision budget.
    pub bfs_runs: usize,
    /// Total number of vertices (or edges) added to the working fault set.
    pub cut_size: usize,
}

/// Decides `LBC(t, α)` between `u` and `v` on `graph`, deleting **vertices**.
///
/// This is Algorithm 2 as written in the paper. The graph is treated as
/// unweighted: only hop counts matter, which is exactly how the modified
/// greedy algorithm (Algorithms 3 and 4) invokes it.
///
/// # Panics
///
/// Panics if `u` or `v` is out of range for `graph`.
#[must_use]
pub fn decide_vertex_lbc(
    graph: &Graph,
    u: VertexId,
    v: VertexId,
    t: u32,
    alpha: u32,
) -> (LbcDecision, LbcStats) {
    let mut view = FaultView::new(graph);
    let mut cut: Vec<VertexId> = Vec::new();
    let mut stats = LbcStats::default();
    for _ in 0..=alpha {
        stats.bfs_runs += 1;
        match shortest_hop_path_within(&view, u, v, t) {
            None => return (LbcDecision::Yes(FaultSet::vertices(cut)), stats),
            Some(path) => {
                for &x in path.interior_vertices() {
                    if view.block_vertex(x) {
                        cut.push(x);
                        stats.cut_size += 1;
                    }
                }
                // A direct edge {u, v} has no interior vertices and can never
                // be cut by vertex faults; further iterations cannot help.
                if path.hop_count() <= 1 {
                    return (LbcDecision::No, stats);
                }
            }
        }
    }
    (LbcDecision::No, stats)
}

/// Decides `LBC(t, α)` between `u` and `v` on `graph`, deleting **edges**.
///
/// Identical to [`decide_vertex_lbc`] except that whole paths of edges are
/// added to the fault set, matching the edge-fault-tolerant variant described
/// at the end of Section 3.1 of the paper.
///
/// # Panics
///
/// Panics if `u` or `v` is out of range for `graph`.
#[must_use]
pub fn decide_edge_lbc(
    graph: &Graph,
    u: VertexId,
    v: VertexId,
    t: u32,
    alpha: u32,
) -> (LbcDecision, LbcStats) {
    let mut view = FaultView::new(graph);
    let mut cut = Vec::new();
    let mut stats = LbcStats::default();
    for _ in 0..=alpha {
        stats.bfs_runs += 1;
        match shortest_hop_path_within(&view, u, v, t) {
            None => return (LbcDecision::Yes(FaultSet::edges(cut)), stats),
            Some(path) => {
                for &e in &path.edges {
                    if view.block_edge(e) {
                        cut.push(e);
                        stats.cut_size += 1;
                    }
                }
            }
        }
    }
    (LbcDecision::No, stats)
}

/// Decides `LBC(t, α)` for either fault model.
///
/// # Panics
///
/// Panics if `u` or `v` is out of range for `graph`.
#[must_use]
pub fn decide_lbc(
    graph: &Graph,
    model: FaultModel,
    u: VertexId,
    v: VertexId,
    t: u32,
    alpha: u32,
) -> (LbcDecision, LbcStats) {
    match model {
        FaultModel::Vertex => decide_vertex_lbc(graph, u, v, t, alpha),
        FaultModel::Edge => decide_edge_lbc(graph, u, v, t, alpha),
    }
}

/// A candidate tree key: the graph identity and search parameters the
/// cached first-round tree was built against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct TreeKey {
    /// Address of the graph the tree was built on. Combined with the vertex
    /// and edge counts this detects every mutation our sweeps perform
    /// (they only ever *add* edges); see [`LbcScratch`] for the contract.
    graph_addr: usize,
    vertices: usize,
    edges: usize,
    source: VertexId,
    max_hops: u32,
}

/// Pooled state for a *sequence* of LBC decisions: the incremental engine
/// behind warm-start respans ([`crate::repair`]) and the modified greedy
/// construction.
///
/// Two costs dominate repeated from-scratch [`decide_lbc`] calls:
///
/// * **Per-call setup** — every call allocates a [`FaultView`] (two bitmaps
///   sized by the graph) and every BFS inside it allocates distance/parent
///   arrays, a queue, and path vectors. The scratch pools all of it with
///   `O(1)` epoch-stamp clearing, so a decision's cost is proportional to
///   the vertices its searches actually visit.
/// * **Redundant first rounds** — Algorithm 2's first BFS runs on the graph
///   with *no* faults applied, so consecutive candidates `{u, v₁}, {u, v₂},
///   …` sharing a source (the common case: sweeps visit edges in id order,
///   which groups sources) repeat an identical pass. The scratch keeps one
///   hop-bounded BFS **tree** per `(graph state, source, t)` and decides
///   every same-source candidate's first round from it: unreachable within
///   `t` ⇒ immediate `YES` with the empty certificate, a 1-hop path in the
///   vertex model ⇒ immediate `NO`, otherwise the tree path seeds the
///   fault-set rounds — all without re-running the pass.
///
/// Decisions (and `YES` certificates) are **bit-identical** to the
/// from-scratch functions: the shared tree records exactly the parents an
/// early-exit search would (see [`HopBfsScratch`]), and every later round
/// runs the same search over an identically-filtered view. Only
/// [`LbcStats::bfs_runs`] can be lower, since shared passes are counted
/// once.
///
/// **Contract:** the cached tree is keyed by graph address plus vertex/edge
/// counts, which detects the only mutation the sweeps perform between
/// decisions (adding edges). Callers that mutate a graph some other way
/// (or interleave decisions on two same-shaped graphs at one address) must
/// call [`LbcScratch::reset`] in between.
#[derive(Debug, Default)]
pub struct LbcScratch {
    faults: FaultScratch,
    search: HopBfsScratch,
    tree: HopBfsScratch,
    path: HopPath,
    cut_vertices: Vec<VertexId>,
    cut_edges: Vec<EdgeId>,
    tree_key: Option<TreeKey>,
}

impl LbcScratch {
    /// Creates an empty scratch; all buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the cached first-round tree. Required only when the caller
    /// mutates a graph in a way the key cannot detect (anything other than
    /// adding edges) between decisions on it.
    pub fn reset(&mut self) {
        self.tree_key = None;
    }

    /// Ensures the cached tree matches `(graph, source, max_hops)`,
    /// rebuilding it if not. Returns `true` when a BFS pass was executed.
    fn ensure_tree(&mut self, graph: &Graph, source: VertexId, max_hops: u32) -> bool {
        let key = TreeKey {
            graph_addr: std::ptr::from_ref(graph) as usize,
            vertices: graph.vertex_count(),
            edges: graph.edge_count(),
            source,
            max_hops,
        };
        if self.tree_key == Some(key) {
            return false;
        }
        self.tree.build_tree(graph, source, max_hops);
        self.tree_key = Some(key);
        true
    }
}

/// Like [`decide_vertex_lbc`] but running on pooled [`LbcScratch`] state:
/// bit-identical decision and certificate, allocation-free apart from the
/// `YES` certificate itself, and first rounds shared across same-source
/// candidates (see [`LbcScratch`]).
///
/// # Panics
///
/// Panics if `u` or `v` is out of range for `graph`.
#[must_use]
pub fn decide_vertex_lbc_with(
    scratch: &mut LbcScratch,
    graph: &Graph,
    u: VertexId,
    v: VertexId,
    t: u32,
    alpha: u32,
) -> (LbcDecision, LbcStats) {
    let mut stats = LbcStats::default();
    if scratch.ensure_tree(graph, u, t) {
        stats.bfs_runs += 1;
    }
    let LbcScratch {
        faults,
        search,
        tree,
        path,
        cut_vertices,
        ..
    } = scratch;
    if tree.tree_dist(v).is_none() {
        // No u–v path of ≤ t hops exists with zero faults applied: the
        // from-scratch first round would answer YES with the empty cut.
        return (LbcDecision::Yes(FaultSet::vertices([])), stats);
    }
    cut_vertices.clear();
    let mut view = faults.view(graph);
    for round in 0..=alpha {
        let found = if round == 0 {
            tree.tree_path_into(v, path)
        } else {
            stats.bfs_runs += 1;
            search.find_path_into(&view, u, v, t, path)
        };
        if !found {
            return (
                LbcDecision::Yes(FaultSet::vertices(cut_vertices.iter().copied())),
                stats,
            );
        }
        for &x in path.interior_vertices() {
            if view.block_vertex(x) {
                cut_vertices.push(x);
                stats.cut_size += 1;
            }
        }
        if path.hop_count() <= 1 {
            return (LbcDecision::No, stats);
        }
    }
    (LbcDecision::No, stats)
}

/// Like [`decide_edge_lbc`] but running on pooled [`LbcScratch`] state; see
/// [`decide_vertex_lbc_with`].
///
/// # Panics
///
/// Panics if `u` or `v` is out of range for `graph`.
#[must_use]
pub fn decide_edge_lbc_with(
    scratch: &mut LbcScratch,
    graph: &Graph,
    u: VertexId,
    v: VertexId,
    t: u32,
    alpha: u32,
) -> (LbcDecision, LbcStats) {
    let mut stats = LbcStats::default();
    if scratch.ensure_tree(graph, u, t) {
        stats.bfs_runs += 1;
    }
    let LbcScratch {
        faults,
        search,
        tree,
        path,
        cut_edges,
        ..
    } = scratch;
    if tree.tree_dist(v).is_none() {
        return (LbcDecision::Yes(FaultSet::edges([])), stats);
    }
    cut_edges.clear();
    let mut view = faults.view(graph);
    for round in 0..=alpha {
        let found = if round == 0 {
            tree.tree_path_into(v, path)
        } else {
            stats.bfs_runs += 1;
            search.find_path_into(&view, u, v, t, path)
        };
        if !found {
            return (
                LbcDecision::Yes(FaultSet::edges(cut_edges.iter().copied())),
                stats,
            );
        }
        for &e in &path.edges {
            if view.block_edge(e) {
                cut_edges.push(e);
                stats.cut_size += 1;
            }
        }
    }
    (LbcDecision::No, stats)
}

/// Like [`decide_lbc`] but running on pooled [`LbcScratch`] state; see
/// [`LbcScratch`] for what is reused and why the results are bit-identical.
///
/// # Panics
///
/// Panics if `u` or `v` is out of range for `graph`.
#[must_use]
pub fn decide_lbc_with(
    scratch: &mut LbcScratch,
    graph: &Graph,
    model: FaultModel,
    u: VertexId,
    v: VertexId,
    t: u32,
    alpha: u32,
) -> (LbcDecision, LbcStats) {
    match model {
        FaultModel::Vertex => decide_vertex_lbc_with(scratch, graph, u, v, t, alpha),
        FaultModel::Edge => decide_edge_lbc_with(scratch, graph, u, v, t, alpha),
    }
}

/// Checks whether a fault set really is a length-`t` cut for `(u, v)`:
/// after removing it, no `u`–`v` path of at most `t` hops remains.
///
/// Used in tests and by the verifier to validate YES certificates.
#[must_use]
pub fn is_length_bounded_cut(
    graph: &Graph,
    cut: &FaultSet,
    u: VertexId,
    v: VertexId,
    t: u32,
) -> bool {
    if cut.contains_vertex(u) || cut.contains_vertex(v) {
        return false;
    }
    let view = cut.apply(graph);
    shortest_hop_path_within(&view, u, v, t).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generators, vid, GraphBuilder};

    /// Two internally-disjoint u-v paths of length 2, plus one of length 4.
    fn theta_graph() -> Graph {
        //      1       2
        //    /   \   /   \
        //  0       (through 1 and 2 separately)       5
        //    \ 3 - 4 - (long path) /
        GraphBuilder::new()
            .unit_edges([
                (0, 1),
                (1, 5),
                (0, 2),
                (2, 5),
                (0, 3),
                (3, 4),
                (4, 6),
                (6, 5),
            ])
            .build()
    }

    #[test]
    fn yes_when_no_short_path_exists_at_all() {
        let g = generators::path(6); // 0-1-2-3-4-5: the only 0-5 path has 5 hops
        let (d, stats) = decide_vertex_lbc(&g, vid(0), vid(5), 3, 2);
        match d {
            LbcDecision::Yes(cut) => assert!(cut.is_empty()),
            LbcDecision::No => panic!("expected YES"),
        }
        assert_eq!(stats.bfs_runs, 1);
    }

    #[test]
    fn yes_certificate_is_a_real_cut() {
        let g = theta_graph();
        // Two 2-hop paths (through 1 and through 2); with alpha = 2 the
        // algorithm can delete both midpoints and certify a cut for t = 2.
        let (d, _) = decide_vertex_lbc(&g, vid(0), vid(5), 2, 2);
        let cut = d.certificate().expect("expected YES").clone();
        assert!(cut.len() <= 2 * 2);
        assert!(is_length_bounded_cut(&g, &cut, vid(0), vid(5), 2));
    }

    #[test]
    fn no_when_terminals_are_adjacent_in_vertex_model() {
        let mut g = generators::path(3);
        g.add_unit_edge(0, 2);
        // Direct edge {0,2} cannot be hit by vertex faults.
        let (d, _) = decide_vertex_lbc(&g, vid(0), vid(2), 3, 5);
        assert_eq!(d, LbcDecision::No);
    }

    #[test]
    fn edge_model_can_cut_a_direct_edge() {
        let mut g = generators::path(3);
        g.add_unit_edge(0, 2);
        // Edge faults can remove both the direct edge and the 2-hop path.
        let (d, _) = decide_edge_lbc(&g, vid(0), vid(2), 2, 2);
        let cut = d.certificate().expect("expected YES");
        assert!(cut.len() <= 4);
        assert!(is_length_bounded_cut(&g, cut, vid(0), vid(2), 2));
    }

    #[test]
    fn no_when_many_disjoint_short_paths_exist() {
        // Complete bipartite-ish: u and v joined by 6 disjoint 2-hop paths.
        let mut builder = GraphBuilder::new().vertices(8);
        for mid in 2..8 {
            builder = builder.unit_edge(0, mid).unit_edge(mid, 1);
        }
        let g = builder.build();
        // alpha = 2: after deleting 3 midpoints (one per round), a short path
        // remains, so the answer must be NO (soundness direction of Thm 4:
        // there IS a cut of size 6 but none of size <= 2).
        let (d, stats) = decide_vertex_lbc(&g, vid(0), vid(1), 2, 2);
        assert_eq!(d, LbcDecision::No);
        assert_eq!(stats.bfs_runs, 3);
    }

    #[test]
    fn yes_promise_is_honoured() {
        // Theorem 4 (completeness): whenever a cut of size <= alpha exists the
        // algorithm must answer YES. Exercise it on graphs where the optimal
        // cut is known by construction.
        for paths in 1..5u32 {
            // `paths` disjoint 3-hop u-v paths: optimal vertex cut = paths.
            let mut builder = GraphBuilder::new();
            let u = 0usize;
            let v = 1usize;
            let mut next = 2usize;
            for _ in 0..paths {
                builder = builder
                    .unit_edge(u, next)
                    .unit_edge(next, next + 1)
                    .unit_edge(next + 1, v);
                next += 2;
            }
            let g = builder.build();
            let (d, _) = decide_vertex_lbc(&g, vid(0), vid(1), 3, paths);
            assert!(d.is_yes(), "expected YES with alpha = {paths}");
            let cut = d.certificate().unwrap();
            assert!(is_length_bounded_cut(&g, cut, vid(0), vid(1), 3));
        }
    }

    #[test]
    fn bfs_budget_respects_alpha_plus_one() {
        let g = generators::complete(20);
        let (_, stats) = decide_vertex_lbc(&g, vid(0), vid(1), 3, 7);
        assert!(stats.bfs_runs <= 8);
    }

    #[test]
    fn cut_size_bound_matches_theorem_4() {
        // The YES certificate has at most alpha * (t - 1) interior vertices.
        let g = generators::grid(6, 6);
        for t in [3u32, 5] {
            for alpha in [1u32, 2, 3] {
                let (d, stats) = decide_vertex_lbc(&g, vid(0), vid(35), t, alpha);
                if let LbcDecision::Yes(cut) = d {
                    assert!(cut.len() <= (alpha * (t - 1)) as usize);
                    assert_eq!(cut.len(), stats.cut_size);
                }
            }
        }
    }

    #[test]
    fn dispatch_by_model() {
        let g = theta_graph();
        let (dv, _) = decide_lbc(&g, FaultModel::Vertex, vid(0), vid(5), 2, 2);
        let (de, _) = decide_lbc(&g, FaultModel::Edge, vid(0), vid(5), 2, 2);
        assert!(dv.is_yes());
        assert!(de.is_yes());
        assert_eq!(dv.certificate().unwrap().model(), FaultModel::Vertex);
        assert_eq!(de.certificate().unwrap().model(), FaultModel::Edge);
    }

    #[test]
    fn scratch_decisions_match_from_scratch_on_fixture_graphs() {
        let graphs = [
            theta_graph(),
            generators::path(6),
            generators::grid(5, 5),
            generators::complete(12),
        ];
        let mut scratch = LbcScratch::new();
        for g in &graphs {
            let n = g.vertex_count();
            for model in [FaultModel::Vertex, FaultModel::Edge] {
                for (u, v) in [(0usize, 1usize), (0, n - 1), (1, n / 2), (n - 1, 0)] {
                    if u == v {
                        continue;
                    }
                    for (t, alpha) in [(2u32, 1u32), (3, 2), (5, 0)] {
                        let (reference, _) = decide_lbc(g, model, vid(u), vid(v), t, alpha);
                        let (pooled, stats) =
                            decide_lbc_with(&mut scratch, g, model, vid(u), vid(v), t, alpha);
                        assert_eq!(pooled, reference);
                        assert!(stats.bfs_runs <= (alpha + 1) as usize);
                    }
                }
            }
        }
    }

    #[test]
    fn shared_tree_saves_first_round_passes_for_same_source_candidates() {
        // From one source, consecutive decisions reuse the first-round tree:
        // only the first decision pays its BFS pass.
        let g = generators::complete(10);
        let mut scratch = LbcScratch::new();
        let (_, first) = decide_vertex_lbc_with(&mut scratch, &g, vid(0), vid(1), 3, 1);
        let (_, second) = decide_vertex_lbc_with(&mut scratch, &g, vid(0), vid(2), 3, 1);
        assert!(
            second.bfs_runs < first.bfs_runs,
            "second same-source decision must reuse the shared tree \
             (first: {}, second: {})",
            first.bfs_runs,
            second.bfs_runs
        );
        // A decision answered entirely from the tree runs no BFS at all:
        // unreachable-within-t targets are immediate YES.
        let far = generators::path(8);
        let mut scratch = LbcScratch::new();
        let (d, warm) = decide_vertex_lbc_with(&mut scratch, &far, vid(0), vid(6), 2, 3);
        assert!(d.is_yes());
        assert_eq!(warm.bfs_runs, 1); // builds the tree
        let (d, cold) = decide_vertex_lbc_with(&mut scratch, &far, vid(0), vid(7), 2, 3);
        assert!(d.is_yes());
        assert_eq!(cold.bfs_runs, 0, "answered from the shared tree");
    }

    #[test]
    fn scratch_tree_invalidates_when_the_graph_grows() {
        let mut g = generators::path(4); // 0-1-2-3
        let mut scratch = LbcScratch::new();
        // 0-3 is 3 hops; with t = 2 it is unreachable => YES.
        let (d, _) = decide_vertex_lbc_with(&mut scratch, &g, vid(0), vid(3), 2, 1);
        assert!(d.is_yes());
        // Adding a chord makes 0-3 reachable in 2 hops; the cached tree must
        // not leak through the mutation.
        g.add_unit_edge(1, 3);
        let (d, _) = decide_vertex_lbc_with(&mut scratch, &g, vid(0), vid(3), 2, 1);
        let (reference, _) = decide_vertex_lbc(&g, vid(0), vid(3), 2, 1);
        assert_eq!(d, reference);
    }

    #[test]
    fn cut_containing_a_terminal_is_not_valid() {
        let g = generators::path(3);
        let cut = FaultSet::vertices([vid(0)]);
        assert!(!is_length_bounded_cut(&g, &cut, vid(0), vid(2), 1));
    }
}
