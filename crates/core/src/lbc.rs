//! The Length-Bounded Cut gap decision `LBC(t, α)` — Algorithm 2 of the paper.
//!
//! Given terminals `u, v`, a hop bound `t`, and a budget `α`, the decision
//! problem asks:
//!
//! * if there is a set `F` of at most `α` vertices (resp. edges), avoiding the
//!   terminals, whose removal leaves no `u`–`v` path of at most `t` hops, the
//!   answer must be **YES**;
//! * if every such cut needs more than `α · t` vertices (resp. edges), the
//!   answer must be **NO**;
//! * anything may be answered in between.
//!
//! Exact Length-Bounded Cut is NP-hard [Baier et al. 2006], but this gap
//! version is decided by the classical "frequency" heuristic for Hitting Set:
//! repeatedly find a path of at most `t` hops and delete all of it. If `α + 1`
//! rounds still find a path, answer NO (Theorem 4 of the paper shows this is
//! correct and runs in `O((m + n) · α)` time).

use ftspan_graph::bfs::shortest_hop_path_within;
use ftspan_graph::{FaultView, Graph, VertexId};

use crate::{FaultModel, FaultSet};

/// Outcome of the `LBC(t, α)` gap decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LbcDecision {
    /// There is no `u`–`v` path of at most `t` hops once the returned fault
    /// set is removed. The set has at most `α · (t − 1)` vertices (or `α · t`
    /// edges in the edge variant) and certifies that a small length-bounded
    /// cut exists — this is the certificate `F_e` used in Lemma 6.
    Yes(FaultSet),
    /// After `α + 1` path-deletion rounds a short path still survives, so
    /// every length-`t` cut has more than `α` elements (in fact the instance
    /// cannot have a cut of size ≤ α, by Theorem 4's argument).
    No,
}

impl LbcDecision {
    /// Returns `true` for the YES outcome.
    #[must_use]
    pub fn is_yes(&self) -> bool {
        matches!(self, LbcDecision::Yes(_))
    }

    /// Returns the certificate cut of a YES outcome.
    #[must_use]
    pub fn certificate(&self) -> Option<&FaultSet> {
        match self {
            LbcDecision::Yes(cut) => Some(cut),
            LbcDecision::No => None,
        }
    }
}

/// Counters describing one LBC decision run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LbcStats {
    /// Number of hop-bounded BFS searches executed (at most `α + 1`).
    pub bfs_runs: usize,
    /// Total number of vertices (or edges) added to the working fault set.
    pub cut_size: usize,
}

/// Decides `LBC(t, α)` between `u` and `v` on `graph`, deleting **vertices**.
///
/// This is Algorithm 2 as written in the paper. The graph is treated as
/// unweighted: only hop counts matter, which is exactly how the modified
/// greedy algorithm (Algorithms 3 and 4) invokes it.
///
/// # Panics
///
/// Panics if `u` or `v` is out of range for `graph`.
#[must_use]
pub fn decide_vertex_lbc(
    graph: &Graph,
    u: VertexId,
    v: VertexId,
    t: u32,
    alpha: u32,
) -> (LbcDecision, LbcStats) {
    let mut view = FaultView::new(graph);
    let mut cut: Vec<VertexId> = Vec::new();
    let mut stats = LbcStats::default();
    for _ in 0..=alpha {
        stats.bfs_runs += 1;
        match shortest_hop_path_within(&view, u, v, t) {
            None => return (LbcDecision::Yes(FaultSet::vertices(cut)), stats),
            Some(path) => {
                for &x in path.interior_vertices() {
                    if view.block_vertex(x) {
                        cut.push(x);
                        stats.cut_size += 1;
                    }
                }
                // A direct edge {u, v} has no interior vertices and can never
                // be cut by vertex faults; further iterations cannot help.
                if path.hop_count() <= 1 {
                    return (LbcDecision::No, stats);
                }
            }
        }
    }
    (LbcDecision::No, stats)
}

/// Decides `LBC(t, α)` between `u` and `v` on `graph`, deleting **edges**.
///
/// Identical to [`decide_vertex_lbc`] except that whole paths of edges are
/// added to the fault set, matching the edge-fault-tolerant variant described
/// at the end of Section 3.1 of the paper.
///
/// # Panics
///
/// Panics if `u` or `v` is out of range for `graph`.
#[must_use]
pub fn decide_edge_lbc(
    graph: &Graph,
    u: VertexId,
    v: VertexId,
    t: u32,
    alpha: u32,
) -> (LbcDecision, LbcStats) {
    let mut view = FaultView::new(graph);
    let mut cut = Vec::new();
    let mut stats = LbcStats::default();
    for _ in 0..=alpha {
        stats.bfs_runs += 1;
        match shortest_hop_path_within(&view, u, v, t) {
            None => return (LbcDecision::Yes(FaultSet::edges(cut)), stats),
            Some(path) => {
                for &e in &path.edges {
                    if view.block_edge(e) {
                        cut.push(e);
                        stats.cut_size += 1;
                    }
                }
            }
        }
    }
    (LbcDecision::No, stats)
}

/// Decides `LBC(t, α)` for either fault model.
///
/// # Panics
///
/// Panics if `u` or `v` is out of range for `graph`.
#[must_use]
pub fn decide_lbc(
    graph: &Graph,
    model: FaultModel,
    u: VertexId,
    v: VertexId,
    t: u32,
    alpha: u32,
) -> (LbcDecision, LbcStats) {
    match model {
        FaultModel::Vertex => decide_vertex_lbc(graph, u, v, t, alpha),
        FaultModel::Edge => decide_edge_lbc(graph, u, v, t, alpha),
    }
}

/// Checks whether a fault set really is a length-`t` cut for `(u, v)`:
/// after removing it, no `u`–`v` path of at most `t` hops remains.
///
/// Used in tests and by the verifier to validate YES certificates.
#[must_use]
pub fn is_length_bounded_cut(
    graph: &Graph,
    cut: &FaultSet,
    u: VertexId,
    v: VertexId,
    t: u32,
) -> bool {
    if cut.contains_vertex(u) || cut.contains_vertex(v) {
        return false;
    }
    let view = cut.apply(graph);
    shortest_hop_path_within(&view, u, v, t).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftspan_graph::{generators, vid, GraphBuilder};

    /// Two internally-disjoint u-v paths of length 2, plus one of length 4.
    fn theta_graph() -> Graph {
        //      1       2
        //    /   \   /   \
        //  0       (through 1 and 2 separately)       5
        //    \ 3 - 4 - (long path) /
        GraphBuilder::new()
            .unit_edges([
                (0, 1),
                (1, 5),
                (0, 2),
                (2, 5),
                (0, 3),
                (3, 4),
                (4, 6),
                (6, 5),
            ])
            .build()
    }

    #[test]
    fn yes_when_no_short_path_exists_at_all() {
        let g = generators::path(6); // 0-1-2-3-4-5: the only 0-5 path has 5 hops
        let (d, stats) = decide_vertex_lbc(&g, vid(0), vid(5), 3, 2);
        match d {
            LbcDecision::Yes(cut) => assert!(cut.is_empty()),
            LbcDecision::No => panic!("expected YES"),
        }
        assert_eq!(stats.bfs_runs, 1);
    }

    #[test]
    fn yes_certificate_is_a_real_cut() {
        let g = theta_graph();
        // Two 2-hop paths (through 1 and through 2); with alpha = 2 the
        // algorithm can delete both midpoints and certify a cut for t = 2.
        let (d, _) = decide_vertex_lbc(&g, vid(0), vid(5), 2, 2);
        let cut = d.certificate().expect("expected YES").clone();
        assert!(cut.len() <= 2 * 2);
        assert!(is_length_bounded_cut(&g, &cut, vid(0), vid(5), 2));
    }

    #[test]
    fn no_when_terminals_are_adjacent_in_vertex_model() {
        let mut g = generators::path(3);
        g.add_unit_edge(0, 2);
        // Direct edge {0,2} cannot be hit by vertex faults.
        let (d, _) = decide_vertex_lbc(&g, vid(0), vid(2), 3, 5);
        assert_eq!(d, LbcDecision::No);
    }

    #[test]
    fn edge_model_can_cut_a_direct_edge() {
        let mut g = generators::path(3);
        g.add_unit_edge(0, 2);
        // Edge faults can remove both the direct edge and the 2-hop path.
        let (d, _) = decide_edge_lbc(&g, vid(0), vid(2), 2, 2);
        let cut = d.certificate().expect("expected YES");
        assert!(cut.len() <= 4);
        assert!(is_length_bounded_cut(&g, cut, vid(0), vid(2), 2));
    }

    #[test]
    fn no_when_many_disjoint_short_paths_exist() {
        // Complete bipartite-ish: u and v joined by 6 disjoint 2-hop paths.
        let mut builder = GraphBuilder::new().vertices(8);
        for mid in 2..8 {
            builder = builder.unit_edge(0, mid).unit_edge(mid, 1);
        }
        let g = builder.build();
        // alpha = 2: after deleting 3 midpoints (one per round), a short path
        // remains, so the answer must be NO (soundness direction of Thm 4:
        // there IS a cut of size 6 but none of size <= 2).
        let (d, stats) = decide_vertex_lbc(&g, vid(0), vid(1), 2, 2);
        assert_eq!(d, LbcDecision::No);
        assert_eq!(stats.bfs_runs, 3);
    }

    #[test]
    fn yes_promise_is_honoured() {
        // Theorem 4 (completeness): whenever a cut of size <= alpha exists the
        // algorithm must answer YES. Exercise it on graphs where the optimal
        // cut is known by construction.
        for paths in 1..5u32 {
            // `paths` disjoint 3-hop u-v paths: optimal vertex cut = paths.
            let mut builder = GraphBuilder::new();
            let u = 0usize;
            let v = 1usize;
            let mut next = 2usize;
            for _ in 0..paths {
                builder = builder
                    .unit_edge(u, next)
                    .unit_edge(next, next + 1)
                    .unit_edge(next + 1, v);
                next += 2;
            }
            let g = builder.build();
            let (d, _) = decide_vertex_lbc(&g, vid(0), vid(1), 3, paths);
            assert!(d.is_yes(), "expected YES with alpha = {paths}");
            let cut = d.certificate().unwrap();
            assert!(is_length_bounded_cut(&g, cut, vid(0), vid(1), 3));
        }
    }

    #[test]
    fn bfs_budget_respects_alpha_plus_one() {
        let g = generators::complete(20);
        let (_, stats) = decide_vertex_lbc(&g, vid(0), vid(1), 3, 7);
        assert!(stats.bfs_runs <= 8);
    }

    #[test]
    fn cut_size_bound_matches_theorem_4() {
        // The YES certificate has at most alpha * (t - 1) interior vertices.
        let g = generators::grid(6, 6);
        for t in [3u32, 5] {
            for alpha in [1u32, 2, 3] {
                let (d, stats) = decide_vertex_lbc(&g, vid(0), vid(35), t, alpha);
                if let LbcDecision::Yes(cut) = d {
                    assert!(cut.len() <= (alpha * (t - 1)) as usize);
                    assert_eq!(cut.len(), stats.cut_size);
                }
            }
        }
    }

    #[test]
    fn dispatch_by_model() {
        let g = theta_graph();
        let (dv, _) = decide_lbc(&g, FaultModel::Vertex, vid(0), vid(5), 2, 2);
        let (de, _) = decide_lbc(&g, FaultModel::Edge, vid(0), vid(5), 2, 2);
        assert!(dv.is_yes());
        assert!(de.is_yes());
        assert_eq!(dv.certificate().unwrap().model(), FaultModel::Vertex);
        assert_eq!(de.certificate().unwrap().model(), FaultModel::Edge);
    }

    #[test]
    fn cut_containing_a_terminal_is_not_valid() {
        let g = generators::path(3);
        let cut = FaultSet::vertices([vid(0)]);
        assert!(!is_length_bounded_cut(&g, &cut, vid(0), vid(2), 1));
    }
}
