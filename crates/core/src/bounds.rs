//! Closed-form reference curves for every size, time, and round bound proved
//! in the paper.
//!
//! The theorems are asymptotic (`O(·)`), so each function here evaluates the
//! bound with its leading constant set to 1 plus an additive `n` slack for
//! the spanning-forest edges every connected spanner must keep. The benches
//! and EXPERIMENTS.md compare measured values against these reference curves:
//! the interesting content is the *shape* (exponents in `n`, `f`, `k`) and
//! relative ordering of algorithms, not the constant.

/// Moore-type girth bound: a graph on `n` vertices with girth greater than
/// `2k` has at most `n^{1+1/k} + n` edges ([ADD+93], the key fact behind all
/// greedy spanner analyses).
#[must_use]
pub fn girth_size_bound(n: usize, k: u32) -> f64 {
    let n = n as f64;
    n.powf(1.0 + 1.0 / f64::from(k.max(1))) + n
}

/// Optimal fault-tolerant spanner size `O(f^{1−1/k} · n^{1+1/k})` achieved by
/// the exponential-time greedy algorithm ([BP19], quoted as the target the
/// paper compares against).
#[must_use]
pub fn optimal_ft_size_bound(n: usize, k: u32, f: u32) -> f64 {
    let k = f64::from(k.max(1));
    let n_f = n as f64;
    let f_f = f64::from(f.max(1));
    f_f.powf(1.0 - 1.0 / k) * n_f.powf(1.0 + 1.0 / k) + n_f
}

/// Size bound of the polynomial-time modified greedy algorithm
/// (Theorem 8): `O(k · f^{1−1/k} · n^{1+1/k})`.
#[must_use]
pub fn poly_greedy_size_bound(n: usize, k: u32, f: u32) -> f64 {
    f64::from(k.max(1)) * optimal_ft_size_bound(n, k, f)
}

/// Running-time bound of the modified greedy algorithm (Theorem 9):
/// `O(m · k · f^{2−1/k} · n^{1+1/k})`, reported in units of elementary BFS
/// edge relaxations.
#[must_use]
pub fn poly_greedy_time_bound(n: usize, m: usize, k: u32, f: u32) -> f64 {
    let k_f = f64::from(k.max(1));
    let f_f = f64::from(f.max(1));
    (m as f64) * k_f * f_f.powf(2.0 - 1.0 / k_f) * (n as f64).powf(1.0 + 1.0 / k_f)
}

/// Size bound of the Dinitz–Krauthgamer construction (Theorem 13 with
/// `g(n) = n^{1+1/k}`): `O(f^{2−1/k} · n^{1+1/k} · log n)`.
#[must_use]
pub fn dk_size_bound(n: usize, k: u32, f: u32) -> f64 {
    let k_f = f64::from(k.max(1));
    let f_f = f64::from(f.max(1));
    let n_f = n as f64;
    f_f.powf(2.0 - 1.0 / k_f) * n_f.powf(1.0 + 1.0 / k_f) * n_f.max(2.0).ln() + n_f
}

/// Size bound of the LOCAL-model construction (Theorem 12):
/// `O(f^{1−1/k} · n^{1+1/k} · log n)`.
#[must_use]
pub fn local_size_bound(n: usize, k: u32, f: u32) -> f64 {
    optimal_ft_size_bound(n, k, f) * (n as f64).max(2.0).ln()
}

/// Round bound of the LOCAL-model construction (Theorem 12): `O(log n)`.
#[must_use]
pub fn local_round_bound(n: usize) -> f64 {
    (n as f64).max(2.0).log2()
}

/// Size bound of the CONGEST-model construction (Theorem 15):
/// `O(k · f^{2−1/k} · n^{1+1/k} · log n)`.
#[must_use]
pub fn congest_size_bound(n: usize, k: u32, f: u32) -> f64 {
    f64::from(k.max(1)) * dk_size_bound(n, k, f)
}

/// Round bound of the CONGEST-model construction (Theorem 15):
/// `O(f²(log f + log log n) + k² · f · log n)`.
#[must_use]
pub fn congest_round_bound(n: usize, k: u32, f: u32) -> f64 {
    let n_f = (n as f64).max(4.0);
    let f_f = f64::from(f.max(1));
    let k_f = f64::from(k.max(1));
    f_f * f_f * (f_f.max(2.0).log2() + n_f.log2().log2()) + k_f * k_f * f_f * n_f.log2()
}

/// Size bound of the Baswana–Sen `(2k − 1)`-spanner (Theorem 14):
/// `O(k · n^{1+1/k})` in expectation.
#[must_use]
pub fn baswana_sen_size_bound(n: usize, k: u32) -> f64 {
    let k_f = f64::from(k.max(1));
    k_f * (n as f64).powf(1.0 + 1.0 / k_f) + n as f64
}

/// Round bound of distributed Baswana–Sen in CONGEST (Theorem 14): `O(k²)`.
#[must_use]
pub fn baswana_sen_round_bound(k: u32) -> f64 {
    f64::from(k.max(1)).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn girth_bound_matches_known_exponents() {
        // k = 1: girth > 2 just means simple, bound ~ n^2.
        assert!((girth_size_bound(100, 1) - (100f64.powi(2) + 100.0)).abs() < 1e-6);
        // Larger k gives smaller bounds.
        assert!(girth_size_bound(1000, 3) < girth_size_bound(1000, 2));
    }

    #[test]
    fn poly_bound_is_k_times_optimal() {
        let n = 500;
        let opt = optimal_ft_size_bound(n, 3, 4);
        let poly = poly_greedy_size_bound(n, 3, 4);
        assert!((poly / opt - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bounds_are_monotone_in_f() {
        for k in 1..5 {
            for f in 1..10u32 {
                assert!(optimal_ft_size_bound(200, k, f + 1) >= optimal_ft_size_bound(200, k, f));
                assert!(dk_size_bound(200, k, f + 1) >= dk_size_bound(200, k, f));
                assert!(congest_round_bound(200, k, f + 1) >= congest_round_bound(200, k, f));
            }
        }
    }

    #[test]
    fn bounds_are_monotone_in_n() {
        for &n in &[10usize, 100, 1000] {
            assert!(poly_greedy_size_bound(n * 2, 2, 2) > poly_greedy_size_bound(n, 2, 2));
            assert!(local_size_bound(n * 2, 2, 2) > local_size_bound(n, 2, 2));
            assert!(local_round_bound(n * 2) > local_round_bound(n));
        }
    }

    #[test]
    fn dk_grows_faster_in_f_than_greedy() {
        // The f-exponent gap (2 − 1/k vs 1 − 1/k) is the headline comparison
        // of experiment E3: doubling f should roughly double the ratio.
        let ratio_small = dk_size_bound(500, 2, 2) / optimal_ft_size_bound(500, 2, 2);
        let ratio_big = dk_size_bound(500, 2, 8) / optimal_ft_size_bound(500, 2, 8);
        assert!(ratio_big > ratio_small * 3.0);
    }

    #[test]
    fn degenerate_parameters_do_not_panic_or_return_nan() {
        for func in [
            girth_size_bound(0, 1),
            optimal_ft_size_bound(0, 1, 0),
            poly_greedy_size_bound(1, 1, 0),
            dk_size_bound(1, 1, 0),
            local_size_bound(0, 1, 0),
            local_round_bound(0),
            congest_size_bound(1, 1, 1),
            congest_round_bound(0, 1, 0),
            baswana_sen_size_bound(0, 1),
            baswana_sen_round_bound(0),
            poly_greedy_time_bound(0, 0, 1, 0),
        ] {
            assert!(func.is_finite());
            assert!(func >= 0.0);
        }
    }

    #[test]
    fn time_bound_is_linear_in_m() {
        let t1 = poly_greedy_time_bound(100, 200, 2, 2);
        let t2 = poly_greedy_time_bound(100, 400, 2, 2);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
