//! The classical non-fault-tolerant greedy `(2k − 1)`-spanner of
//! Althöfer et al. [ADD+93] (Theorem 1 of the paper).
//!
//! This is both the `f = 0` specialization that all fault-tolerant
//! constructions generalize and the inner spanner algorithm plugged into the
//! Dinitz–Krauthgamer framework ([`crate::dk`]) in the centralized setting.

use std::time::Instant;

use ftspan_graph::dijkstra::dijkstra_distances;
use ftspan_graph::Graph;

use crate::stats::{SpannerResult, SpannerStats};
use crate::SpannerParams;

/// Builds the classical greedy `(2k − 1)`-spanner: consider edges in
/// nondecreasing weight order and keep an edge only if the current spanner
/// does not already connect its endpoints within `(2k − 1)` times its weight.
///
/// The output has at most `O(n^{1+1/k})` edges and is simultaneously a
/// `(2k − 1)`-spanner for every edge weight function consistent with the
/// ordering used.
///
/// # Examples
///
/// ```
/// use ftspan::nonft::greedy_spanner;
/// use ftspan_graph::generators;
///
/// let g = generators::complete(20);
/// let result = greedy_spanner(&g, 2);
/// assert!(result.spanner.edge_count() < g.edge_count());
/// ```
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn greedy_spanner(graph: &Graph, k: u32) -> SpannerResult {
    assert!(k >= 1, "stretch parameter k must be at least 1");
    let start = Instant::now();
    let params = SpannerParams::vertex(k, 0);
    let threshold_factor = f64::from(params.stretch());
    let mut spanner = Graph::empty_like(graph);
    let mut stats = SpannerStats {
        algorithm: "classic-greedy",
        input_vertices: graph.vertex_count(),
        input_edges: graph.edge_count(),
        ..SpannerStats::default()
    };
    for edge_id in graph.edge_ids_by_weight() {
        let edge = graph.edge(edge_id);
        let (u, v) = edge.endpoints();
        let d = dijkstra_distances(&spanner, u)[v.index()];
        if d > threshold_factor * edge.weight() + 1e-9 {
            spanner.add_edge(u.index(), v.index(), edge.weight());
        }
    }
    stats.spanner_edges = spanner.edge_count();
    stats.elapsed = start.elapsed();
    SpannerResult {
        spanner,
        params,
        stats,
        certificates: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use crate::verify::{fault_free_stretch, verify_spanner, VerificationMode};
    use ftspan_graph::generators;
    use ftspan_graph::girth::girth_exceeds;
    use ftspan_graph::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_is_a_valid_spanner() {
        let mut rng = StdRng::seed_from_u64(20);
        let g = generators::connected_gnp(25, 0.3, &mut rng);
        let result = greedy_spanner(&g, 2);
        let report = verify_spanner(
            &g,
            &result.spanner,
            SpannerParams::vertex(2, 0),
            VerificationMode::Exhaustive,
        );
        assert!(report.is_valid());
        assert!(fault_free_stretch(&g, &result.spanner) <= 3.0 + 1e-9);
    }

    #[test]
    fn unweighted_output_has_girth_greater_than_2k() {
        // The classical analysis: the greedy spanner of an unweighted graph
        // has girth > 2k, which is what forces the O(n^{1+1/k}) size.
        let mut rng = StdRng::seed_from_u64(21);
        for k in [2u32, 3] {
            let g = generators::connected_gnp(40, 0.3, &mut rng);
            let result = greedy_spanner(&g, k);
            assert!(
                girth_exceeds(&result.spanner, 2 * k),
                "k = {k}: girth should exceed {}",
                2 * k
            );
        }
    }

    #[test]
    fn size_respects_the_moore_bound() {
        let mut rng = StdRng::seed_from_u64(22);
        let g = generators::connected_gnp(60, 0.5, &mut rng);
        for k in [2u32, 3, 4] {
            let result = greedy_spanner(&g, k);
            assert!(
                (result.spanner.edge_count() as f64) <= bounds::girth_size_bound(60, k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn connected_input_gives_connected_spanner() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = generators::connected_gnp(30, 0.2, &mut rng);
        let result = greedy_spanner(&g, 3);
        assert!(is_connected(&result.spanner));
    }

    #[test]
    fn k_equal_one_keeps_every_edge_of_a_unit_graph() {
        // Stretch 1 on a unit-weighted graph: an edge can only be dropped if
        // a parallel connection of weight <= 1 exists, which simple graphs
        // don't have.
        let g = generators::complete(8);
        let result = greedy_spanner(&g, 1);
        assert_eq!(result.spanner.edge_count(), g.edge_count());
    }

    #[test]
    fn weighted_triangle_drops_the_heavy_edge_only_when_stretch_allows() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 2, 2.0);
        // k=1 (stretch 1): path 0-1-2 has weight 2 <= 1 * 2, so the heavy
        // edge is dropped even at stretch 1.
        let r = greedy_spanner(&g, 1);
        assert_eq!(r.spanner.edge_count(), 2);
        // Heavier edge that genuinely needs stretch >= 1.5 to drop:
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 2, 1.2);
        let r = greedy_spanner(&g, 1);
        assert_eq!(r.spanner.edge_count(), 3);
        let r = greedy_spanner(&g, 2);
        assert_eq!(r.spanner.edge_count(), 2);
    }

    #[test]
    fn larger_k_never_gives_a_larger_spanner() {
        let mut rng = StdRng::seed_from_u64(24);
        let g = generators::connected_gnp(40, 0.4, &mut rng);
        let mut previous = usize::MAX;
        for k in 1..5 {
            let size = greedy_spanner(&g, k).spanner.edge_count();
            assert!(size <= previous, "k = {k}");
            previous = size;
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_panics() {
        let _ = greedy_spanner(&generators::path(3), 0);
    }
}
