//! Instrumentation collected while building a spanner, plus the common
//! result type returned by every construction in this crate.

use std::time::Duration;

use ftspan_graph::{EdgeId, Graph};

use crate::{FaultSet, SpannerParams};

/// Counters describing one spanner construction run.
///
/// The polynomial-time greedy algorithm's cost is dominated by BFS runs
/// inside the Length-Bounded Cut subroutine (Theorem 9 bounds the total by
/// `O(m · k · f^{2−1/k} · n^{1+1/k})`), so the counters expose exactly those
/// quantities for the runtime experiments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpannerStats {
    /// Name of the algorithm that produced the result.
    pub algorithm: &'static str,
    /// Number of vertices of the input graph.
    pub input_vertices: usize,
    /// Number of edges of the input graph.
    pub input_edges: usize,
    /// Number of edges in the produced spanner.
    pub spanner_edges: usize,
    /// Number of calls to the Length-Bounded Cut decision subroutine
    /// (one per input edge for the modified greedy; 0 for other algorithms).
    pub lbc_calls: usize,
    /// Number of BFS traversals executed across all LBC calls.
    pub bfs_runs: usize,
    /// Number of fault sets enumerated (exact greedy only).
    pub fault_sets_enumerated: usize,
    /// Wall-clock construction time.
    pub elapsed: Duration,
}

impl SpannerStats {
    /// Fraction of input edges kept in the spanner (`0` for an empty input).
    #[must_use]
    pub fn retention(&self) -> f64 {
        if self.input_edges == 0 {
            0.0
        } else {
            self.spanner_edges as f64 / self.input_edges as f64
        }
    }
}

/// The certificate recorded when the modified greedy algorithm decides to add
/// an edge: the fault set returned by the LBC approximation, which witnesses
/// that the edge was not yet `(2k − 1)`-spanned against `f` faults.
///
/// These are exactly the sets `F_e` of the paper's Lemma 6, from which the
/// `(2k)`-blocking set is built.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeCertificate {
    /// Identifier of the edge in the *input* graph `G`.
    pub input_edge: EdgeId,
    /// Identifier of the same edge in the produced spanner `H`.
    pub spanner_edge: EdgeId,
    /// The cut `F_e` returned by the LBC subroutine at the moment the edge
    /// was added (size at most `f · (2k − 2)` for vertex faults).
    pub cut: FaultSet,
}

/// Result of a spanner construction: the spanner itself, the parameters it
/// was built for, run statistics, and (optionally) per-edge certificates.
#[derive(Clone, Debug)]
pub struct SpannerResult {
    /// The constructed spanner `H`, on the same vertex set as the input.
    pub spanner: Graph,
    /// The parameters the construction targeted.
    pub params: SpannerParams,
    /// Instrumentation counters.
    pub stats: SpannerStats,
    /// Certificates for each added edge, when requested (modified greedy
    /// only); empty otherwise.
    pub certificates: Vec<EdgeCertificate>,
}

impl SpannerResult {
    /// Number of edges in the spanner.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.spanner.edge_count()
    }

    /// Convenience accessor for the spanner graph.
    #[must_use]
    pub fn spanner(&self) -> &Graph {
        &self.spanner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_handles_empty_input() {
        let stats = SpannerStats::default();
        assert_eq!(stats.retention(), 0.0);
        let stats = SpannerStats {
            input_edges: 10,
            spanner_edges: 4,
            ..SpannerStats::default()
        };
        assert!((stats.retention() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn stats_default_is_zeroed() {
        let stats = SpannerStats::default();
        assert_eq!(stats.lbc_calls, 0);
        assert_eq!(stats.bfs_runs, 0);
        assert_eq!(stats.elapsed, Duration::ZERO);
    }
}
