//! End-to-end exercise of `ftspan-server`: a real TCP server on an
//! ephemeral port, concurrent clients with duplicate-heavy traffic, a
//! fault wave landing mid-stream, an explicitly rate-limited client, the
//! metrics and snapshot endpoints, and a graceful shutdown that hands the
//! warm service back. Every answer served over the wire must be
//! bit-identical to a direct `answer_batch` on an identically-built
//! backend.

use std::thread;

use ftspan::{sample_fault_set, FaultModel, FaultSet, SpannerParams};
use ftspan_graph::{generators, vid};
use ftspan_integration_tests::rng;
use ftspan_oracle::{
    OracleService, Query, ServiceConfig, ShardPlanOptions, ShardedOptions, ShardedOracle, Snapshot,
    SpannerOracle,
};
use ftspan_server::{BatchEntry, Client, Reply, Server, ServerConfig, ShedReason, WireAnswer};
use rand::rngs::StdRng;
use rand::Rng;

const CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: usize = 120;

fn build_backend(seed: u64) -> ShardedOracle {
    let mut r = rng(seed);
    let graph = generators::connected_gnp(90, 0.08, &mut r);
    let options = ShardedOptions {
        plan: ShardPlanOptions {
            shards: 4,
            ..ShardPlanOptions::default()
        },
        ..ShardedOptions::default()
    };
    ShardedOracle::build(graph, SpannerParams::vertex(2, 2), options)
}

/// Duplicate-heavy workload: few distinct queries sampled with repetition,
/// so cross-connection coalescing in the shared service rounds has work.
fn workload(oracle: &ShardedOracle, seed: u64) -> Vec<Query> {
    let mut r: StdRng = rng(seed);
    let n = oracle.graph().vertex_count();
    let distinct: Vec<Query> = (0..24)
        .map(|i| {
            let u = vid(r.gen_range(0..n));
            let mut v = vid(r.gen_range(0..n));
            while v == u {
                v = vid(r.gen_range(0..n));
            }
            let faults = sample_fault_set(oracle.graph(), FaultModel::Vertex, 2, &[], &mut r);
            if i % 3 == 0 {
                Query::path(u, v, faults)
            } else {
                Query::distance(u, v, faults)
            }
        })
        .collect();
    (0..QUERIES_PER_CLIENT)
        .map(|_| distinct[r.gen_range(0..distinct.len())].clone())
        .collect()
}

fn assert_entries_match(
    label: &str,
    queries: &[Query],
    entries: &[BatchEntry],
    direct: &ShardedOracle,
) {
    let want = direct.answer_batch(queries);
    assert_eq!(entries.len(), want.len(), "{label}");
    for ((query, want), got) in queries.iter().zip(&want).zip(entries) {
        let BatchEntry::Answered(got) = got else {
            panic!("{label}: unexpected shed for {query:?}");
        };
        assert_eq!(
            want.distance().map(f64::to_bits),
            got.distance.map(f64::to_bits),
            "{label}: distance bits diverged for {query:?}"
        );
        assert_eq!(
            want.path(),
            got.path.as_deref(),
            "{label}: witness path diverged for {query:?}"
        );
    }
}

/// The main end-to-end scenario: concurrent duplicate-heavy clients, a
/// wave barrier mid-test, post-wave verification, metrics, snapshot, and a
/// drained shutdown.
#[test]
fn server_answers_match_direct_backend_across_a_wave() {
    let mut direct = build_backend(7301);
    let backend = build_backend(7301);
    let service = OracleService::new(
        backend,
        ServiceConfig::default()
            .with_max_in_flight(64)
            .with_lane_in_flight(16),
    );
    let server =
        Server::start(service, "127.0.0.1:0", ServerConfig::default()).expect("server starts");
    let addr = server.local_addr();

    // Phase 1 — concurrent clients, duplicate-heavy batches, pre-wave.
    // Their jobs interleave in shared service rounds; answers must still be
    // the direct backend's bits.
    let phase1: Vec<(Vec<Query>, Vec<BatchEntry>)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let queries = workload(&direct, 100 + c as u64);
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let entries = client.batch(queries.clone()).expect("batch served");
                    (queries, entries)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for (c, (queries, entries)) in phase1.iter().enumerate() {
        assert_entries_match(&format!("phase1 client {c}"), queries, entries, &direct);
    }

    // Single-query endpoints agree with the batch path.
    let mut probe = Client::connect(addr).expect("probe connects");
    let empty = FaultSet::empty(FaultModel::Vertex);
    let want = direct.path(vid(3), vid(40), &empty);
    match probe
        .path(vid(3), vid(40), empty.clone())
        .expect("PATH served")
    {
        Reply::Answer(WireAnswer { distance, path }) => {
            assert_eq!(
                distance.map(f64::to_bits),
                want.as_ref().map(|(d, _)| d.to_bits())
            );
            assert_eq!(path, want.map(|(_, p)| p));
        }
        other => panic!("unexpected PATH reply: {other:?}"),
    }

    // Phase 2 — a wave lands mid-stream through the same protocol. The
    // summary must mirror the direct backend's repair decision for the
    // identical wave.
    let wave = {
        let mut r = rng(7302);
        sample_fault_set(direct.graph(), FaultModel::Vertex, 2, &[], &mut r)
    };
    let direct_report = SpannerOracle::apply_wave(&mut direct, &wave, &Default::default());
    match probe.wave(wave).expect("WAVE served") {
        Reply::Wave(summary) => {
            assert_eq!(summary.epoch, direct.epoch(), "epoch after wave");
            assert_eq!(
                summary.edges_added,
                direct_report.outcome.edges_added as u64
            );
            assert_eq!(
                summary.broken_pairs,
                direct_report.outcome.broken_pairs.len() as u64
            );
            assert_eq!(summary.escalated, direct_report.outcome.escalated);
            assert_eq!(
                summary.rebuilt_lanes,
                direct_report
                    .rebuilt_lanes
                    .iter()
                    .map(|&l| l as u32)
                    .collect::<Vec<_>>()
            );
        }
        other => panic!("unexpected WAVE reply: {other:?}"),
    }

    // Phase 3 — concurrent post-wave traffic: answers now reflect the
    // repaired spanner, still bit-identical to the (post-wave) direct twin.
    let phase3: Vec<(Vec<Query>, Vec<BatchEntry>)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let queries = workload(&direct, 300 + c as u64);
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let entries = client.batch(queries.clone()).expect("batch served");
                    (queries, entries)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for (c, (queries, entries)) in phase3.iter().enumerate() {
        assert_entries_match(&format!("phase3 client {c}"), queries, entries, &direct);
    }

    // Metrics endpoint: the pinned Prometheus families are present and the
    // query counter reflects the traffic above.
    let metrics = probe.metrics().expect("METRICS served");
    for family in [
        "ftspan_queries_total",
        "ftspan_cache_hit_ratio",
        "ftspan_lane_shed_total",
        "ftspan_waves_total 1",
    ] {
        assert!(
            metrics.contains(family),
            "metrics missing {family}:\n{metrics}"
        );
    }

    // Snapshot endpoint: the downloaded bytes restore to an oracle that
    // answers bit-identically to the live one.
    let snapshot = probe.snapshot().expect("SNAPSHOT served");
    let restored: ShardedOracle = Snapshot::restore(&snapshot).expect("snapshot restores");
    assert_eq!(restored.epoch(), direct.epoch());
    let check = workload(&direct, 999);
    let want = direct.answer_batch(&check);
    let got = restored.answer_batch(&check);
    for ((query, want), got) in check.iter().zip(&want).zip(&got) {
        assert_eq!(
            want.distance().map(f64::to_bits),
            got.distance().map(f64::to_bits),
            "restored snapshot diverged for {query:?}"
        );
    }

    // Out-of-range vertex ids are rejected with an error, not a panic, and
    // the connection survives to serve the next request.
    match probe.distance(vid(10_000), vid(0), FaultSet::empty(FaultModel::Vertex)) {
        Ok(Reply::Error(message)) => assert!(message.contains("out of range"), "{message}"),
        other => panic!("expected a protocol error, got {other:?}"),
    }
    assert!(
        probe.metrics().is_ok(),
        "connection stays usable after an error"
    );

    // Graceful shutdown returns the warm service: counters accumulated over
    // the wire survive, and duplicate-heavy cross-connection traffic
    // actually coalesced.
    let service = server.shutdown();
    let metrics = service.metrics();
    let submitted = (2 * CLIENTS * QUERIES_PER_CLIENT) as u64;
    assert!(
        metrics.submitted >= submitted,
        "expected at least {submitted} submissions, got {}",
        metrics.submitted
    );
    assert_eq!(metrics.waves, 1);
    assert!(
        metrics.coalesced > 0,
        "duplicates must coalesce: {metrics:?}"
    );
    assert_eq!(metrics.shed, 0, "no admission cooldown configured");
}

/// A token bucket with zero refill is a hard per-connection budget: the
/// first `capacity` queries are answered, the rest come back as explicit
/// `Shed(RateLimited)` replies — deterministically, and without affecting
/// an unthrottled view of the backend.
#[test]
fn rate_limited_client_sees_explicit_sheds() {
    const CAPACITY: u32 = 200;
    const SENT: usize = 250;

    let direct = build_backend(7401);
    let backend = build_backend(7401);
    let service = OracleService::new(backend, ServiceConfig::default());
    let config = ServerConfig {
        rate_capacity: CAPACITY,
        rate_refill_per_sec: 0.0,
        ..ServerConfig::default()
    };
    let server = Server::start(service, "127.0.0.1:0", config).expect("server starts");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("client connects");
    let empty = FaultSet::empty(FaultModel::Vertex);
    let n = direct.graph().vertex_count();
    let mut answered = 0usize;
    let mut shed = 0usize;
    for i in 0..SENT {
        let (u, v) = (vid(i % n), vid((i * 7 + 1) % n));
        if u == v {
            continue;
        }
        match client.distance(u, v, empty.clone()).expect("reply arrives") {
            Reply::Answer(answer) => {
                answered += 1;
                assert_eq!(
                    answer.distance.map(f64::to_bits),
                    direct.distance(u, v, &empty).map(f64::to_bits),
                    "rate-limited client's served answers still match"
                );
            }
            Reply::Shed(ShedReason::RateLimited) => shed += 1,
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    assert_eq!(answered, CAPACITY as usize, "exactly the budget is served");
    assert_eq!(
        shed + answered,
        SENT - (0..SENT)
            .filter(|i| vid(i % n) == vid((i * 7 + 1) % n))
            .count()
    );

    // A fresh connection gets a fresh bucket: the limit is per client, not
    // global.
    let mut fresh = Client::connect(addr).expect("fresh client connects");
    match fresh.distance(vid(1), vid(5), empty).expect("reply") {
        Reply::Answer(_) => {}
        other => panic!("fresh connection throttled: {other:?}"),
    }

    let service = server.shutdown();
    assert_eq!(
        u64::try_from(answered + 1).unwrap(),
        service.metrics().submitted,
        "shed requests never reach the service queue"
    );
}

/// A connection that opens a frame and never finishes it — the slow-loris
/// pattern, here a raw socket sending only a frame header — is shed by the
/// per-connection read timeout: one typed `Shed(Timeout)` reply, then the
/// server closes the connection and frees the handler thread. Healthy
/// clients on other connections are unaffected, and shutdown stays prompt.
#[test]
fn stalled_connection_is_shed_with_a_typed_timeout_reply() {
    use ftspan_server::protocol::{decode_reply, read_frame};
    use std::io::Write;
    use std::time::Duration;

    let direct = build_backend(7601);
    let service = OracleService::new(build_backend(7601), ServiceConfig::default());
    let config = ServerConfig {
        read_timeout: Some(Duration::from_millis(120)),
        ..ServerConfig::default()
    };
    let server = Server::start(service, "127.0.0.1:0", config).expect("server starts");
    let addr = server.local_addr();

    // The loris: a frame header promising 64 bytes, then silence.
    let mut loris = std::net::TcpStream::connect(addr).expect("loris connects");
    loris
        .write_all(&64u32.to_le_bytes())
        .expect("header written");
    let body = read_frame(&mut loris)
        .expect("a reply frame arrives before the stall can pin the handler")
        .expect("a typed reply, not a silent close")
        .into_intact()
        .expect("the reply frame passes its checksum");
    match decode_reply(&body).expect("reply decodes") {
        Reply::Shed(ShedReason::Timeout) => {}
        other => panic!("expected Shed(Timeout), got {other:?}"),
    }
    // After the shed the server closes: the stream reaches a clean EOF.
    assert!(
        matches!(read_frame(&mut loris), Ok(None) | Err(_)),
        "the shed connection must be closed, not left open"
    );

    // A healthy client is untouched by the loris next door.
    let mut healthy = Client::connect(addr).expect("healthy client connects");
    let empty = FaultSet::empty(FaultModel::Vertex);
    match healthy
        .distance(vid(2), vid(30), empty.clone())
        .expect("served")
    {
        Reply::Answer(answer) => assert_eq!(
            answer.distance.map(f64::to_bits),
            direct.distance(vid(2), vid(30), &empty).map(f64::to_bits)
        ),
        other => panic!("unexpected reply: {other:?}"),
    }

    // Prompt shutdown: the loris handler was freed by the timeout, not
    // parked inside `read_frame` until process exit.
    let _ = server.shutdown();
}

/// The periodic snapshot timer: with `snapshot_interval` set, a background
/// thread keeps capturing the published epoch into `latest_snapshot`; the
/// newest capture restores to an oracle answering bit-identically, the
/// timer keeps up with a wave, and shutdown joins the thread cleanly.
#[test]
fn periodic_snapshot_timer_captures_and_joins_on_shutdown() {
    use std::time::Duration;

    let mut direct = build_backend(7701);
    let service = OracleService::new(build_backend(7701), ServiceConfig::default());
    let config = ServerConfig {
        snapshot_interval: Some(Duration::from_millis(15)),
        ..ServerConfig::default()
    };
    let server = Server::start(service, "127.0.0.1:0", config).expect("server starts");
    let addr = server.local_addr();

    // Wait (bounded) for the first background capture.
    let mut tries = 0;
    while server.snapshot_captures() == 0 {
        tries += 1;
        assert!(tries < 200, "timer never captured");
        thread::sleep(Duration::from_millis(5));
    }
    let bytes = server.latest_snapshot().expect("a capture is published");
    let restored: ShardedOracle = Snapshot::restore(&bytes).expect("snapshot restores");
    assert_eq!(restored.epoch(), direct.epoch());

    // A wave lands over the wire; the next captures must pick up the new
    // epoch without any client pulling `SNAPSHOT`.
    let wave = {
        let mut r = rng(7702);
        sample_fault_set(direct.graph(), FaultModel::Vertex, 2, &[], &mut r)
    };
    let _ = SpannerOracle::apply_wave(&mut direct, &wave, &Default::default());
    let mut probe = Client::connect(addr).expect("probe connects");
    match probe.wave(wave).expect("WAVE served") {
        Reply::Wave(summary) => assert_eq!(summary.epoch, direct.epoch()),
        other => panic!("unexpected WAVE reply: {other:?}"),
    }
    let mut tries = 0;
    loop {
        let bytes = server.latest_snapshot().expect("captures continue");
        let restored: ShardedOracle = Snapshot::restore(&bytes).expect("snapshot restores");
        if restored.epoch() == direct.epoch() {
            let check = workload(&direct, 7703);
            let want = direct.answer_batch(&check);
            let got = restored.answer_batch(&check);
            for ((query, want), got) in check.iter().zip(&want).zip(&got) {
                assert_eq!(
                    want.distance().map(f64::to_bits),
                    got.distance().map(f64::to_bits),
                    "post-wave capture diverged for {query:?}"
                );
            }
            break;
        }
        tries += 1;
        assert!(tries < 200, "timer never caught the post-wave epoch");
        thread::sleep(Duration::from_millis(5));
    }

    // Shutdown joins the timer thread; returning at all is the assertion.
    let captures = server.snapshot_captures();
    assert!(captures >= 1);
    let _ = server.shutdown();
}

/// Dropping the server (instead of calling `shutdown`) still tears
/// everything down without hanging the process.
#[test]
fn dropping_the_server_does_not_hang() {
    let backend = build_backend(7501);
    let service = OracleService::new(backend, ServiceConfig::default());
    let server =
        Server::start(service, "127.0.0.1:0", ServerConfig::default()).expect("server starts");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("client connects");
    let empty = FaultSet::empty(FaultModel::Vertex);
    assert!(matches!(
        client.distance(vid(0), vid(3), empty).expect("served"),
        Reply::Answer(_)
    ));
    drop(server);
    // The connection is closed by shutdown; the next call fails cleanly.
    let mut failed = false;
    for _ in 0..3 {
        if client
            .distance(vid(0), vid(3), FaultSet::empty(FaultModel::Vertex))
            .is_err()
        {
            failed = true;
            break;
        }
    }
    assert!(failed, "connection must observe the shutdown");
}
