//! The warm-restart differential suite: an oracle captured with
//! [`Snapshot::capture`] and restored with [`Snapshot::restore`] must be
//! **indistinguishable** from the original under replay — bit-identical
//! answers for the same query stream, and identical repair reports for the
//! same subsequent fault waves — for both the single and the sharded
//! backend, captured cold and captured mid-churn.
//!
//! The caches deliberately restart empty (a snapshot persists structure,
//! not warmth), so the replay also checks that answers do not depend on
//! cache state: the original answers from warm trees, the restored oracle
//! rebuilds them, and the bits must still agree.

use ftspan::{sample_fault_set, FaultModel, SpannerParams};
use ftspan_graph::{generators, vid};
use ftspan_integration_tests::rng;
use ftspan_oracle::{
    ChurnConfig, FaultOracle, OracleOptions, Query, ShardPlanOptions, ShardedOptions,
    ShardedOracle, Snapshot, SnapshotKind, Snapshottable, SpannerOracle, WaveReport,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Replay rounds after the restore (each: one wave + one burst).
const ROUNDS: usize = 6;
const BURST: usize = 60;

fn burst(oracle: &impl SpannerOracle, f: usize, r: &mut StdRng) -> Vec<Query> {
    let n = oracle.graph().vertex_count();
    (0..BURST)
        .map(|i| {
            let u = vid(r.gen_range(0..n));
            let mut v = vid(r.gen_range(0..n));
            while v == u {
                v = vid(r.gen_range(0..n));
            }
            let faults = sample_fault_set(oracle.graph(), FaultModel::Vertex, f, &[], r);
            if i % 3 == 0 {
                Query::path(u, v, faults)
            } else {
                Query::distance(u, v, faults)
            }
        })
        .collect()
}

/// Bit-identical answer comparison: exact `f64` bits and exact witness
/// paths. The restored oracle rebuilds the same deterministic trees, so
/// even path tie-breaking must agree.
fn assert_answers_identical(
    label: &str,
    queries: &[Query],
    want: &[ftspan_oracle::Answer],
    got: &[ftspan_oracle::Answer],
) {
    assert_eq!(want.len(), got.len(), "{label}");
    for ((query, want), got) in queries.iter().zip(want).zip(got) {
        assert_eq!(
            want.distance().map(f64::to_bits),
            got.distance().map(f64::to_bits),
            "{label}: distance bits diverged for {query:?}"
        );
        assert_eq!(
            want.path(),
            got.path(),
            "{label}: witness path diverged for {query:?}"
        );
    }
}

/// Wave reports must match field-for-field; `elapsed` is wall-clock and
/// excluded (the pattern the service differential suite uses).
fn assert_reports_identical(label: &str, want: &WaveReport, got: &WaveReport) {
    assert_eq!(want.outcome.wave, got.outcome.wave, "{label}");
    assert_eq!(
        want.outcome.broken_pairs, got.outcome.broken_pairs,
        "{label}"
    );
    assert_eq!(want.outcome.candidates, got.outcome.candidates, "{label}");
    assert_eq!(want.outcome.edges_added, got.outcome.edges_added, "{label}");
    assert_eq!(want.outcome.escalated, got.outcome.escalated, "{label}");
    assert_eq!(
        want.outcome.surviving_spanner_edges, got.outcome.surviving_spanner_edges,
        "{label}"
    );
    assert_eq!(want.rebuilt_lanes, got.rebuilt_lanes, "{label}");
    assert_eq!(want.severed_pairs, got.severed_pairs, "{label}");
}

/// The generic runner: optionally pre-churn the original, capture, restore,
/// then drive both oracles through an identical wave-and-burst replay.
fn capture_restore_replay<O: SpannerOracle + Snapshottable>(
    label: &str,
    mut original: O,
    pre_waves: usize,
    f: usize,
    seed: u64,
) {
    let churn = ChurnConfig::default();
    let mut r = rng(seed);

    // Age the original before the capture so the snapshot carries repaired
    // spanner edges, accumulated damage, and a non-zero epoch.
    for _ in 0..pre_waves {
        let wave = sample_fault_set(original.graph(), FaultModel::Vertex, 2, &[], &mut r);
        original.apply_wave(&wave, &churn);
        original.answer_batch(&burst(&original, f, &mut r));
    }

    let bytes = Snapshot::capture(&original);
    let mut restored: O = Snapshot::restore(&bytes).expect("snapshot restores");
    assert_eq!(restored.epoch(), original.epoch(), "{label}: epoch");
    assert_eq!(
        restored.graph().edge_count(),
        original.graph().edge_count(),
        "{label}: effective graph"
    );
    assert_eq!(
        restored.spanner().edge_count(),
        original.spanner().edge_count(),
        "{label}: spanner"
    );
    // A restored oracle re-captures to the exact same bytes: the snapshot
    // is a fixed point, so chained warm restarts never drift.
    assert_eq!(
        Snapshot::capture(&restored),
        bytes,
        "{label}: re-capture must be byte-identical"
    );

    for round in 0..ROUNDS {
        let label = format!("{label} round {round}");
        let queries = burst(&original, f, &mut r);
        let want = original.answer_batch(&queries);
        let got = restored.answer_batch(&queries);
        assert_answers_identical(&label, &queries, &want, &got);

        // The same wave lands on both; repair must take the identical
        // decisions (same candidates, same added edges, same escalation).
        let wave = sample_fault_set(original.graph(), FaultModel::Vertex, 2, &[], &mut r);
        let want_report = original.apply_wave(&wave, &churn);
        let got_report = restored.apply_wave(&wave, &churn);
        assert_reports_identical(&label, &want_report, &got_report);
        assert_eq!(restored.epoch(), original.epoch(), "{label}");
    }

    // After an identical divergence-free history, the two snapshots still
    // agree byte-for-byte.
    assert_eq!(
        Snapshot::capture(&original),
        Snapshot::capture(&restored),
        "{label}: post-replay snapshots diverged"
    );
}

fn single_oracle(seed: u64) -> FaultOracle {
    let mut r = rng(seed);
    let graph = generators::connected_gnp(80, 0.09, &mut r);
    FaultOracle::build(graph, SpannerParams::vertex(2, 2), OracleOptions::default())
}

fn sharded_oracle(seed: u64) -> ShardedOracle {
    let mut r = rng(seed);
    let graph = generators::connected_gnp(80, 0.09, &mut r);
    let options = ShardedOptions {
        plan: ShardPlanOptions {
            shards: 4,
            ..ShardPlanOptions::default()
        },
        ..ShardedOptions::default()
    };
    ShardedOracle::build(graph, SpannerParams::vertex(2, 2), options)
}

#[test]
fn single_oracle_snapshot_restores_cold() {
    capture_restore_replay("single-cold", single_oracle(4101), 0, 2, 11);
}

#[test]
fn single_oracle_snapshot_restores_mid_churn() {
    capture_restore_replay("single-churned", single_oracle(4102), 5, 2, 12);
}

#[test]
fn sharded_oracle_snapshot_restores_cold() {
    capture_restore_replay("sharded-cold", sharded_oracle(4103), 0, 2, 13);
}

#[test]
fn sharded_oracle_snapshot_restores_mid_churn() {
    capture_restore_replay("sharded-churned", sharded_oracle(4104), 5, 2, 14);
}

/// A weighted family: restored weights must be the exact bits the original
/// carried, so replayed distances stay bit-identical even off unit weights.
#[test]
fn weighted_snapshot_stays_bit_identical() {
    let mut r = rng(4105);
    let base = {
        let mut g = generators::random_geometric(60, 0.22, &mut r);
        generators::overlay_random_spanning_tree(&mut g, &mut r);
        generators::with_random_weights(&g, 1.0, 8.0, &mut r)
    };
    let oracle = FaultOracle::build(base, SpannerParams::vertex(2, 1), OracleOptions::default());
    capture_restore_replay("weighted", oracle, 3, 1, 15);
}

/// The kind tag routes a snapshot to the right backend and refuses the
/// wrong one with a typed error, so a deployment can sniff before
/// restoring.
#[test]
fn snapshot_kind_is_sniffable() {
    let single = Snapshot::capture(&single_oracle(4106));
    let sharded = Snapshot::capture(&sharded_oracle(4107));
    assert_eq!(Snapshot::peek_kind(&single).unwrap(), SnapshotKind::Single);
    assert_eq!(
        Snapshot::peek_kind(&sharded).unwrap(),
        SnapshotKind::Sharded
    );
    assert!(Snapshot::restore::<ShardedOracle>(&single).is_err());
    assert!(Snapshot::restore::<FaultOracle>(&sharded).is_err());
}
