//! Wire-level fault injection against a live `ftspan-server`, through the
//! byte-mangling `ChaosProxy`: a client that disconnects mid-frame, a
//! slow-loris that stalls inside a frame, a reply truncated on its way
//! back, and in-flight bit rot that only the frame checksum can catch. In
//! every drill the server must degrade *explicitly* — a typed shed or a
//! clean connection error, never a hung handler and never a deserialized
//! poisoned frame — and keep serving healthy clients; each test ends in a
//! prompt `shutdown()`, which joins every handler thread, so the test
//! completing at all is the no-leaked-threads assertion.

use std::time::Duration;

use ftspan::{FaultModel, FaultSet, SpannerParams};
use ftspan_graph::{generators, vid};
use ftspan_integration_tests::rng;
use ftspan_oracle::{
    OracleService, ServiceConfig, ShardPlanOptions, ShardedOptions, ShardedOracle,
};
use ftspan_server::{
    ChaosProxy, Client, ProxyFault, ProxyPlan, Reply, Server, ServerConfig, ShedReason,
};

fn build_backend(seed: u64) -> ShardedOracle {
    let mut r = rng(seed);
    let graph = generators::connected_gnp(60, 0.1, &mut r);
    let options = ShardedOptions {
        plan: ShardPlanOptions {
            shards: 3,
            ..ShardPlanOptions::default()
        },
        ..ShardedOptions::default()
    };
    ShardedOracle::build(graph, SpannerParams::vertex(2, 2), options)
}

fn start_server(seed: u64, config: ServerConfig) -> (Server<ShardedOracle>, ShardedOracle) {
    let direct = build_backend(seed);
    let service = OracleService::new(build_backend(seed), ServiceConfig::default());
    let server = Server::start(service, "127.0.0.1:0", config).expect("server starts");
    (server, direct)
}

fn empty() -> FaultSet {
    FaultSet::empty(FaultModel::Vertex)
}

/// Control drill: a faithful proxy is invisible — answers through it are
/// bit-identical to the direct backend.
#[test]
fn passthrough_proxy_is_invisible() {
    let (server, direct) = start_server(8801, ServerConfig::default());
    let proxy =
        ChaosProxy::start(server.local_addr(), ProxyPlan::passthrough()).expect("proxy starts");

    let mut client = Client::connect(proxy.local_addr()).expect("client connects via proxy");
    for (u, v) in [(0, 17), (5, 41), (12, 33)] {
        match client.distance(vid(u), vid(v), empty()).expect("served") {
            Reply::Answer(answer) => assert_eq!(
                answer.distance.map(f64::to_bits),
                direct.distance(vid(u), vid(v), &empty()).map(f64::to_bits)
            ),
            other => panic!("unexpected reply: {other:?}"),
        }
    }

    proxy.shutdown();
    let _ = server.shutdown();
}

/// Mid-frame disconnect: the proxy forwards six bytes of a request frame
/// (the header plus a sliver of body) and yanks the connection. The
/// handler must treat the truncated frame as a dead connection and exit;
/// a healthy client connected directly keeps getting exact answers, and
/// shutdown stays prompt.
#[test]
fn mid_frame_disconnect_releases_the_handler() {
    let (server, direct) = start_server(8802, ServerConfig::default());
    let proxy = ChaosProxy::start(
        server.local_addr(),
        ProxyPlan {
            to_server: ProxyFault::CloseAfter { bytes: 6 },
            to_client: ProxyFault::None,
        },
    )
    .expect("proxy starts");

    let mut victim = Client::connect(proxy.local_addr()).expect("victim connects");
    // The request frame is far larger than six bytes, so the server sees a
    // mid-frame EOF. The victim either fails to read a reply or sees the
    // connection drop — an explicit error either way.
    assert!(
        victim.distance(vid(3), vid(20), empty()).is_err(),
        "a half-sent request cannot be answered"
    );

    let mut healthy = Client::connect(server.local_addr()).expect("healthy client connects");
    match healthy.distance(vid(3), vid(20), empty()).expect("served") {
        Reply::Answer(answer) => assert_eq!(
            answer.distance.map(f64::to_bits),
            direct.distance(vid(3), vid(20), &empty()).map(f64::to_bits)
        ),
        other => panic!("unexpected reply: {other:?}"),
    }

    proxy.shutdown();
    // Prompt shutdown proves the victim's handler thread was released by
    // the mid-frame error, not parked on a dead socket.
    let _ = server.shutdown();
}

/// Slow-loris: the proxy forwards five bytes (header + one body byte) and
/// stalls, keeping the socket open forever. The server's read timeout
/// must fire, send one typed `Shed(Timeout)` reply back through the
/// still-healthy return leg, and close — no handler pinned.
#[test]
fn slow_loris_is_shed_by_the_read_timeout() {
    let config = ServerConfig {
        read_timeout: Some(Duration::from_millis(150)),
        ..ServerConfig::default()
    };
    let (server, direct) = start_server(8803, config);
    let proxy = ChaosProxy::start(
        server.local_addr(),
        ProxyPlan {
            to_server: ProxyFault::StallAfter { bytes: 5 },
            to_client: ProxyFault::None,
        },
    )
    .expect("proxy starts");

    let mut loris = Client::connect(proxy.local_addr()).expect("loris connects");
    match loris
        .distance(vid(1), vid(30), empty())
        .expect("a typed reply arrives")
    {
        Reply::Shed(ShedReason::Timeout) => {}
        other => panic!("expected Shed(Timeout), got {other:?}"),
    }
    // The server closed after shedding: the next call fails cleanly.
    assert!(loris.distance(vid(1), vid(30), empty()).is_err());

    let mut healthy = Client::connect(server.local_addr()).expect("healthy client connects");
    match healthy.distance(vid(1), vid(30), empty()).expect("served") {
        Reply::Answer(answer) => assert_eq!(
            answer.distance.map(f64::to_bits),
            direct.distance(vid(1), vid(30), &empty()).map(f64::to_bits)
        ),
        other => panic!("unexpected reply: {other:?}"),
    }

    proxy.shutdown();
    let _ = server.shutdown();
}

/// Bit rot in flight: the proxy forwards the first request frame
/// faithfully, then XOR-flips every byte starting one byte into the
/// second frame's body. Byte counts are preserved, so only the checksum
/// can notice — the server must consume the damaged frame whole (keeping
/// the stream aligned), answer with a typed error, and never hand the
/// poisoned bytes to the request decoder.
#[test]
fn corrupted_request_frame_gets_a_typed_error_not_a_decode() {
    use ftspan_server::protocol::encode_request;
    use ftspan_server::Request;

    let (server, direct) = start_server(8805, ServerConfig::default());
    let request = Request::Distance {
        u: vid(4),
        v: vid(28),
        faults: empty(),
    };
    // Corrupt from the second body byte of the second identical frame on:
    // one full frame (12-byte header + body) plus the next frame's header
    // and first body byte pass faithfully.
    let framed_len = encode_request(&request).len() + 12;
    let proxy = ChaosProxy::start(
        server.local_addr(),
        ProxyPlan {
            to_server: ProxyFault::CorruptAfter {
                bytes: framed_len + 12 + 1,
            },
            to_client: ProxyFault::None,
        },
    )
    .expect("proxy starts");

    let mut victim = Client::connect(proxy.local_addr()).expect("victim connects");
    match victim.call(&request).expect("first request served") {
        Reply::Answer(answer) => assert_eq!(
            answer.distance.map(f64::to_bits),
            direct.distance(vid(4), vid(28), &empty()).map(f64::to_bits)
        ),
        other => panic!("unexpected reply: {other:?}"),
    }
    // The second, bit-rotted request: a typed checksum error comes back on
    // the still-faithful return leg. Had the server deserialized the
    // poisoned body, the XORed opcode would have been garbage — any reply
    // other than the checksum error fails the drill.
    match victim.call(&request).expect("a typed reply arrives") {
        Reply::Error(message) => assert!(
            message.contains("checksum"),
            "expected a checksum error, got: {message}"
        ),
        other => panic!("expected a checksum error, got {other:?}"),
    }

    let mut healthy = Client::connect(server.local_addr()).expect("healthy client connects");
    match healthy.distance(vid(4), vid(28), empty()).expect("served") {
        Reply::Answer(answer) => assert_eq!(
            answer.distance.map(f64::to_bits),
            direct.distance(vid(4), vid(28), &empty()).map(f64::to_bits)
        ),
        other => panic!("unexpected reply: {other:?}"),
    }

    proxy.shutdown();
    let _ = server.shutdown();
}

/// Truncated reply: the request reaches the server intact, but the proxy
/// cuts the reply frame after six bytes. The *client* must surface an
/// explicit error instead of blocking on the missing tail, and the server
/// (whose handler already wrote the reply) shuts down promptly.
#[test]
fn truncated_reply_surfaces_a_client_error() {
    let (server, direct) = start_server(8804, ServerConfig::default());
    let proxy = ChaosProxy::start(
        server.local_addr(),
        ProxyPlan {
            to_server: ProxyFault::None,
            to_client: ProxyFault::CloseAfter { bytes: 6 },
        },
    )
    .expect("proxy starts");

    let mut victim = Client::connect(proxy.local_addr()).expect("victim connects");
    let err = victim
        .distance(vid(2), vid(25), empty())
        .expect_err("a truncated reply must be an explicit error");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");

    let mut healthy = Client::connect(server.local_addr()).expect("healthy client connects");
    match healthy.distance(vid(2), vid(25), empty()).expect("served") {
        Reply::Answer(answer) => assert_eq!(
            answer.distance.map(f64::to_bits),
            direct.distance(vid(2), vid(25), &empty()).map(f64::to_bits)
        ),
        other => panic!("unexpected reply: {other:?}"),
    }

    proxy.shutdown();
    let _ = server.shutdown();
}
