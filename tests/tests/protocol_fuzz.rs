//! Protocol fuzzing: `decode_request`, `decode_reply`, and `read_frame`
//! over truncated, bit-flipped, and arbitrary byte strings. The decoders
//! face the network directly, so the contract under fuzz is *total*: every
//! input returns `Ok` or `Err` — no panic, no abort — and a truncation of
//! a valid encoding is always an explicit `Err`.

use ftspan::{FaultModel, FaultSet};
use ftspan_graph::{eid, vid};
use ftspan_oracle::{JournalEntry, Query};
use ftspan_server::protocol::{
    decode_reply, decode_request, encode_reply, encode_request, read_frame, write_frame,
};
use ftspan_server::{BatchEntry, Reply, Request, ShedReason, WaveSummary, WireAnswer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A corpus of every request shape the wire knows.
fn request_corpus() -> Vec<Request> {
    let vertex_faults = FaultSet::vertices([vid(3), vid(9)]);
    vec![
        Request::Distance {
            u: vid(0),
            v: vid(5),
            faults: vertex_faults.clone(),
        },
        Request::Path {
            u: vid(2),
            v: vid(7),
            faults: FaultSet::edges([eid(1), eid(4)]),
        },
        Request::Batch(vec![
            Query::distance(vid(0), vid(1), vertex_faults.clone()),
            Query::path(vid(1), vid(2), FaultSet::empty(FaultModel::Edge)),
        ]),
        Request::Batch(Vec::new()),
        Request::Wave(vertex_faults),
        Request::Metrics,
        Request::Snapshot,
        Request::JournalSubscribe { from_epoch: 12 },
        Request::Promote,
    ]
}

/// A corpus of every reply shape the wire knows.
fn reply_corpus() -> Vec<Reply> {
    vec![
        Reply::Answer(WireAnswer {
            distance: Some(3.5),
            path: Some(vec![vid(0), vid(4), vid(9)]),
        }),
        Reply::Answer(WireAnswer {
            distance: None,
            path: None,
        }),
        Reply::Batch(vec![
            BatchEntry::Answered(WireAnswer {
                distance: Some(1.0),
                path: None,
            }),
            BatchEntry::Shed,
        ]),
        Reply::Wave(WaveSummary {
            epoch: 3,
            edges_added: 7,
            broken_pairs: 2,
            escalated: true,
            rebuilt_lanes: vec![0, 2],
        }),
        Reply::Metrics("ftspan_queries_total 5\n".to_owned()),
        Reply::SnapshotChunk {
            total: 4,
            offset: 0,
            data: vec![1, 2, 3, 4],
        },
        Reply::JournalEntries(vec![JournalEntry {
            epoch: 9,
            wave: FaultSet::vertices([vid(1)]),
            report_digest: 0xDEAD_BEEF,
        }]),
        Reply::Promoted { epoch: 11 },
        Reply::Shed(ShedReason::RateLimited),
        Reply::Shed(ShedReason::Admission),
        Reply::Error("nope".to_owned()),
    ]
}

fn arbitrary_bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut r = StdRng::seed_from_u64(seed);
    (0..len).map(|_| r.gen::<u32>() as u8).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte strings never panic a decoder. (They may — in
    /// principle — decode; the property is totality, not rejection.)
    #[test]
    fn decoders_are_total_on_arbitrary_bytes(len in 0usize..600, seed in 0u64..1_000_000) {
        let bytes = arbitrary_bytes(len, seed);
        let _ = decode_request(&bytes);
        let _ = decode_reply(&bytes);
    }

    /// Every proper truncation of a valid request encoding is an explicit
    /// error: the decoders never read past the buffer and never accept a
    /// partial message.
    #[test]
    fn truncated_requests_are_rejected(which in 0usize..9, cut in 0.0f64..1.0) {
        let corpus = request_corpus();
        let bytes = encode_request(&corpus[which % corpus.len()]);
        prop_assume!(bytes.len() > 1);
        let cut = (cut * (bytes.len() - 1) as f64) as usize;
        prop_assert!(decode_request(&bytes[..cut]).is_err());
    }

    /// Same for replies.
    #[test]
    fn truncated_replies_are_rejected(which in 0usize..12, cut in 0.0f64..1.0) {
        let corpus = reply_corpus();
        let bytes = encode_reply(&corpus[which % corpus.len()]);
        prop_assume!(bytes.len() > 1);
        let cut = (cut * (bytes.len() - 1) as f64) as usize;
        prop_assert!(decode_reply(&bytes[..cut]).is_err());
    }

    /// A single flipped bit anywhere in a valid encoding never panics a
    /// decoder; whatever still decodes re-encodes without panicking too.
    #[test]
    fn bit_flipped_messages_never_panic(
        which in 0usize..12,
        byte_seed in 0u64..1_000_000,
        bit in 0usize..8,
    ) {
        let corpus = request_corpus();
        let mut bytes = encode_request(&corpus[which % corpus.len()]);
        let idx = (byte_seed as usize) % bytes.len();
        bytes[idx] ^= 1 << bit;
        if let Ok(request) = decode_request(&bytes) {
            let _ = encode_request(&request);
        }
        let replies = reply_corpus();
        let mut bytes = encode_reply(&replies[which % replies.len()]);
        let idx = (byte_seed as usize) % bytes.len();
        bytes[idx] ^= 1 << bit;
        if let Ok(reply) = decode_reply(&bytes) {
            let _ = encode_reply(&reply);
        }
    }

    /// `read_frame` over arbitrary bytes returns — never panics and never
    /// over-allocates past the frame cap — and a truncated valid frame is
    /// an explicit error, not a short read.
    #[test]
    fn read_frame_is_total(len in 0usize..64, seed in 0u64..1_000_000, cut in 0.0f64..1.0) {
        let bytes = arbitrary_bytes(len, seed);
        let mut cursor = std::io::Cursor::new(bytes.clone());
        let _ = read_frame(&mut cursor);

        let mut framed = Vec::new();
        write_frame(&mut framed, &bytes).unwrap();
        let cut = (cut * (framed.len() - 1) as f64) as usize;
        let mut truncated = std::io::Cursor::new(framed[..cut].to_vec());
        match read_frame(&mut truncated) {
            // An empty prefix is a clean end-of-stream; anything else of a
            // partial frame must surface as an error.
            Ok(None) => prop_assert_eq!(cut, 0),
            Ok(Some(_)) => prop_assert!(false, "truncated frame decoded"),
            Err(_) => {}
        }
    }
}
