//! Integration tests comparing the distributed constructions against the
//! centralized ones on shared workloads.

use ftspan::verify::{verify_spanner, VerificationMode};
use ftspan::{bounds, poly_greedy_spanner, SpannerParams};
use ftspan_distributed::{
    congest_baswana_sen, congest_ft_spanner, local_ft_spanner, padded_decomposition,
    DecompositionOptions,
};
use ftspan_integration_tests::{medium_workloads, rng, small_workloads};

#[test]
fn local_construction_is_valid_on_every_small_workload() {
    let params = SpannerParams::vertex(2, 1);
    for (name, graph) in small_workloads(1_000) {
        let mut r = rng(7);
        let result = local_ft_spanner(&graph, params, &mut r);
        let report = verify_spanner(
            &graph,
            &result.spanner,
            params,
            VerificationMode::Exhaustive,
        );
        assert!(report.is_valid(), "{name}: {:?}", report.violations);
        assert!(result.spanner.is_edge_subgraph_of(&graph), "{name}");
    }
}

#[test]
fn congest_construction_is_valid_on_every_small_workload() {
    let params = SpannerParams::vertex(2, 1);
    for (name, graph) in small_workloads(2_000) {
        let mut r = rng(8);
        let out = congest_ft_spanner(&graph, params, &mut r);
        let report = verify_spanner(
            &graph,
            &out.result.spanner,
            params,
            VerificationMode::Exhaustive,
        );
        assert!(report.is_valid(), "{name}: {:?}", report.violations);
    }
}

#[test]
fn distributed_baswana_sen_matches_centralized_size_bound() {
    for (name, graph) in medium_workloads(3_000) {
        let mut r = rng(9);
        let distributed = congest_baswana_sen(&graph, 2, &mut r);
        let report = verify_spanner(
            &graph,
            &distributed.spanner,
            SpannerParams::vertex(2, 0),
            VerificationMode::Sampled {
                samples: 10,
                seed: 3,
            },
        );
        assert!(report.is_valid(), "{name}");
        let bound = 4.0 * bounds::baswana_sen_size_bound(graph.vertex_count(), 2)
            + graph.vertex_count() as f64;
        assert!(
            (distributed.spanner.edge_count() as f64) <= bound.min(graph.edge_count() as f64 + 1.0),
            "{name}: {} edges vs bound {bound}",
            distributed.spanner.edge_count()
        );
    }
}

#[test]
fn local_round_cost_tracks_log_n_and_congest_tracks_its_bound() {
    let params = SpannerParams::vertex(2, 1);
    for (name, graph) in medium_workloads(4_000) {
        let n = graph.vertex_count();
        let mut r = rng(10);
        let local = local_ft_spanner(&graph, params, &mut r);
        assert!(
            (local.rounds.rounds as f64) <= 120.0 * bounds::local_round_bound(n),
            "{name}: LOCAL rounds {} out of range",
            local.rounds.rounds
        );
        let congest = congest_ft_spanner(&graph, params, &mut r);
        assert!(
            (congest.result.rounds.rounds as f64) <= 80.0 * bounds::congest_round_bound(n, 2, 1),
            "{name}: CONGEST rounds {} out of range",
            congest.result.rounds.rounds
        );
        assert!(
            congest.result.rounds.max_words_per_edge_round <= 6,
            "{name}"
        );
    }
}

#[test]
fn distributed_outputs_are_never_sparser_than_what_correctness_allows() {
    // The LOCAL union over O(log n) partitions and the CONGEST union over
    // many DK iterations are both at least as large as one centralized
    // modified-greedy run is *allowed* to be small — i.e. they stay valid but
    // pay extra edges. Check the ordering on a dense workload.
    let params = SpannerParams::vertex(2, 1);
    let mut r = rng(11);
    let graph = ftspan_graph::generators::connected_gnp(60, 0.3, &mut r);
    let central = poly_greedy_spanner(&graph, params);
    let local = local_ft_spanner(&graph, params, &mut r);
    let congest = congest_ft_spanner(&graph, params, &mut r);
    assert!(local.spanner.edge_count() + 10 >= central.spanner.edge_count());
    assert!(congest.result.spanner.edge_count() + 10 >= central.spanner.edge_count());
}

#[test]
fn decomposition_covers_edges_on_medium_workloads() {
    for (name, graph) in medium_workloads(5_000) {
        let mut r = rng(12);
        let d = padded_decomposition(&graph, &DecompositionOptions::default(), &mut r);
        assert!(
            d.edge_coverage(&graph) > 0.999,
            "{name}: coverage {}",
            d.edge_coverage(&graph)
        );
        let expected = ((graph.vertex_count() as f64).log2() * 4.0).ceil() as usize;
        assert_eq!(d.partitions.len(), expected, "{name}");
    }
}
