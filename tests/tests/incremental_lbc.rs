//! Pins the incremental LBC repair engine to the from-scratch reference
//! implementations.
//!
//! Two families of properties:
//!
//! * **Scratch-reusing decisions are bit-identical.** `decide_lbc_with`
//!   (pooled fault views, pooled BFS buffers, shared same-source
//!   first-round trees) must return exactly the decision *and* certificate
//!   of the from-scratch `decide_lbc`, for both fault models, across all
//!   four random generator families, including sequences that interleave
//!   decisions with spanner growth (the access pattern of the greedy sweep
//!   and the warm-start respan).
//! * **Respan output is candidate-order invariant.** `respan_candidates`
//!   sorts its sweep by `(weight, class, index)`, so permuting or
//!   duplicating the candidate list must not change the rebuilt spanner,
//!   the `added` delta, or the decision counters.

use ftspan::lbc::{decide_lbc, decide_lbc_with, LbcScratch};
use ftspan::repair::{respan_candidates, respan_candidates_with, RepairOptions, RepairScratch};
use ftspan::{poly_greedy_spanner, FaultModel, SpannerParams};
use ftspan_graph::{generators, vid, EdgeId, Graph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One of the four random generator families, by index (the same palette as
/// the CSR model suite: gnp, Barabási–Albert, Watts–Strogatz, and weighted
/// geometric).
fn family_graph(family: usize, n: usize, seed: u64) -> Graph {
    let mut r = StdRng::seed_from_u64(seed);
    match family {
        0 => generators::connected_gnp(n, 0.25, &mut r),
        1 => generators::barabasi_albert(n, 3, &mut r),
        2 => generators::watts_strogatz(n, 4, 0.2, &mut r),
        _ => {
            let mut g = generators::random_geometric(n, 0.35, &mut r);
            generators::overlay_random_spanning_tree(&mut g, &mut r);
            g
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scratch_decisions_match_from_scratch_decide_lbc(
        family in 0usize..4,
        n in 10usize..32,
        seed in 0u64..1_000,
        t in 2u32..6,
        alpha in 0u32..4,
    ) {
        let g = family_graph(family, n, seed);
        let mut scratch = LbcScratch::new();
        let mut r = StdRng::seed_from_u64(seed ^ 0xABCD);
        for model in [FaultModel::Vertex, FaultModel::Edge] {
            // Random pairs, including repeated sources so the shared
            // first-round tree actually gets exercised and re-used.
            let mut pairs = Vec::new();
            for _ in 0..12 {
                let u = vid(r.gen_range(0..n));
                for _ in 0..3 {
                    let v = vid(r.gen_range(0..n));
                    if u != v {
                        pairs.push((u, v));
                    }
                }
            }
            for (u, v) in pairs {
                let (reference, _) = decide_lbc(&g, model, u, v, t, alpha);
                let (pooled, stats) = decide_lbc_with(&mut scratch, &g, model, u, v, t, alpha);
                prop_assert_eq!(&pooled, &reference);
                prop_assert!(stats.bfs_runs <= (alpha + 1) as usize);
            }
        }
    }

    #[test]
    fn scratch_decisions_survive_interleaved_spanner_growth(
        family in 0usize..4,
        n in 10usize..28,
        seed in 0u64..1_000,
    ) {
        // Replay the greedy sweep's access pattern on a growing spanner —
        // a decision per input edge, adding the YES edges as we go — and
        // demand the scratch path reproduce the from-scratch path exactly,
        // spanner included.
        let g = family_graph(family, n, seed);
        let params = SpannerParams::vertex(2, 1);
        let (t, alpha) = (params.stretch(), params.f());
        let mut scratch = LbcScratch::new();
        let mut by_reference = Graph::empty_like(&g);
        let mut by_scratch = Graph::empty_like(&g);
        for id in g.edge_ids_by_weight() {
            let (u, v) = g.edge(id).endpoints();
            let (reference, _) = decide_lbc(&by_reference, FaultModel::Vertex, u, v, t, alpha);
            let (pooled, _) =
                decide_lbc_with(&mut scratch, &by_scratch, FaultModel::Vertex, u, v, t, alpha);
            prop_assert_eq!(&pooled, &reference);
            if reference.is_yes() {
                by_reference.add_edge(u.index(), v.index(), g.edge(id).weight());
                by_scratch.add_edge(u.index(), v.index(), g.edge(id).weight());
            }
        }
        // And the packaged construction (which runs on the engine) agrees
        // with the edge set the reference decisions accumulated.
        let built = poly_greedy_spanner(&g, params);
        prop_assert_eq!(built.spanner.edge_count(), by_reference.edge_count());
        for (_, e) in by_reference.edges() {
            prop_assert!(built.spanner.edge_between(e.source(), e.target()).is_some());
        }
    }

    #[test]
    fn respan_is_invariant_under_candidate_order_and_duplication(
        family in 0usize..4,
        n in 10usize..28,
        seed in 0u64..1_000,
        drop_stride in 2usize..5,
    ) {
        let g = family_graph(family, n, seed);
        let params = SpannerParams::vertex(2, 1);
        let built = poly_greedy_spanner(&g, params);
        // Damage the spanner so the respan has real decisions to make.
        let keep: Vec<EdgeId> = built
            .spanner
            .edge_ids()
            .filter(|e| e.index() % drop_stride != 0)
            .collect();
        let damaged = built.spanner.edge_subgraph(keep);
        let candidates: Vec<EdgeId> = g.edge_ids().collect();
        let options = RepairOptions::default();

        let reference = respan_candidates(&g, &damaged, params, &candidates, &options);

        // Shuffle and duplicate the candidate list: the (weight, class,
        // index) sweep order — and with it every decision — must not move.
        let mut shuffled = candidates.clone();
        let mut r = StdRng::seed_from_u64(seed ^ 0x5EED);
        shuffled.shuffle(&mut r);
        let mut noisy = shuffled.clone();
        noisy.extend_from_slice(&shuffled[..candidates.len() / 2]);
        let mut scratch = RepairScratch::new();
        let permuted =
            respan_candidates_with(&mut scratch, &g, &damaged, params, &noisy, &options);

        prop_assert_eq!(permuted.added.clone(), reference.added.clone());
        prop_assert_eq!(permuted.stats.lbc_calls, reference.stats.lbc_calls);
        prop_assert_eq!(
            permuted.spanner.edge_count(),
            reference.spanner.edge_count()
        );
        for (_, e) in reference.spanner.edges() {
            let id = permuted.spanner.edge_between(e.source(), e.target());
            prop_assert!(id.is_some());
            prop_assert_eq!(permuted.spanner.weight(id.unwrap()), e.weight());
        }
        // Reusing the same scratch for a second pass changes nothing.
        let again = respan_candidates_with(&mut scratch, &g, &damaged, params, &noisy, &options);
        prop_assert_eq!(again.added, reference.added);
    }
}
