//! Verifies the oracle's cached-tree hit path performs **zero heap
//! allocation** per query.
//!
//! A counting global allocator wraps the system allocator; the test warms
//! the shortest-path-tree cache, arms the counter, and replays cached
//! distance queries. Any allocation on that path (the pre-CSR implementation
//! cloned the fault set into a `Query`, built an owned `CacheKey` with two
//! vectors, and created a fresh `DijkstraScratch` per call) fails the test.
//!
//! The counter only *observes* — allocation behavior is unchanged. Because
//! the counter is process-global, every test in this binary serializes its
//! whole body through one mutex so a concurrently running test can never
//! leak allocations into an armed window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use ftspan::repair::{respan_candidates_with, RepairOptions, RepairScratch};
use ftspan::{FaultSet, SpannerParams};
use ftspan_graph::{generators, vid, EdgeId};
use ftspan_oracle::{
    ChurnConfig, FaultOracle, OracleOptions, ShardPlanOptions, ShardedOptions, ShardedOracle,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
/// Serializes test bodies: the counter is process-global, so no other test
/// may allocate while one of them has the counter armed.
static SERIAL: Mutex<()> = Mutex::new(());

struct CountingAllocator;

// SAFETY: delegates every operation verbatim to the system allocator; the
// wrapper only increments counters.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Runs `f` with the counter armed and returns how many allocations it made.
fn count_allocations(f: impl FnOnce()) -> u64 {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    ALLOCATIONS.load(Ordering::SeqCst)
}

fn small_oracle() -> FaultOracle {
    let mut rng = StdRng::seed_from_u64(77);
    let graph = generators::connected_gnp(60, 0.15, &mut rng);
    FaultOracle::build(graph, SpannerParams::vertex(2, 2), OracleOptions::default())
}

#[test]
fn cached_distance_queries_do_not_allocate() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let oracle = small_oracle();
    let faults = FaultSet::vertices([vid(3), vid(9)]);
    // Warm-up: computes and caches the tree (allocates, unarmed), and
    // exercises the scratch pool so its vector is populated.
    assert!(oracle.distance(vid(1), vid(20), &faults).is_some());
    let allocations = count_allocations(|| {
        for _ in 0..1_000 {
            let d = oracle.distance(vid(1), vid(20), &faults);
            assert!(d.is_some());
        }
    });
    assert_eq!(
        allocations, 0,
        "cached-tree distance hit path must not touch the heap"
    );
}

#[test]
fn cached_hits_on_either_endpoint_do_not_allocate() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let oracle = small_oracle();
    let faults = FaultSet::vertices([vid(5)]);
    assert!(oracle.distance(vid(2), vid(30), &faults).is_some());
    let allocations = count_allocations(|| {
        for _ in 0..500 {
            // Symmetric query: served from the same tree, rooted at the
            // other endpoint.
            let d = oracle.distance(vid(30), vid(2), &faults);
            assert!(d.is_some());
            // A different target under the same fault set: same tree again.
            let d = oracle.distance(vid(2), vid(31), &faults);
            assert!(d.is_some());
        }
    });
    assert_eq!(allocations, 0, "either-endpoint hits must not allocate");
}

#[test]
fn edge_fault_cached_hits_do_not_allocate() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = StdRng::seed_from_u64(78);
    let graph = generators::connected_gnp(40, 0.2, &mut rng);
    let oracle = FaultOracle::build(graph, SpannerParams::edge(2, 1), OracleOptions::default());
    let faults = FaultSet::edges([ftspan_graph::eid(0), ftspan_graph::eid(4)]);
    assert!(oracle.distance(vid(1), vid(12), &faults).is_some());
    let allocations = count_allocations(|| {
        for _ in 0..500 {
            let d = oracle.distance(vid(1), vid(12), &faults);
            assert!(d.is_some());
        }
    });
    assert_eq!(
        allocations, 0,
        "edge-fault hits must not re-translate fault ids"
    );
}

#[test]
fn steady_state_respan_allocates_for_outputs_only() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // A warm `RepairScratch` must hold every buffer a respan sweep needs:
    // the second identical pass may allocate only for its outputs (the
    // rebuilt spanner and the `added` list) — not for sweep events, the
    // candidate dedup map, LBC fault views, or BFS state, all of which the
    // pre-engine implementation re-allocated per call, sized by the graph.
    let mut rng = StdRng::seed_from_u64(80);
    let graph = generators::connected_gnp(60, 0.15, &mut rng);
    let params = SpannerParams::vertex(2, 2);
    let built = ftspan::poly_greedy_spanner(&graph, params);
    // Damage the spanner so the sweep has real LBC decisions to make.
    let keep: Vec<EdgeId> = built
        .spanner
        .edge_ids()
        .filter(|e| e.index() % 3 != 0)
        .collect();
    let damaged = built.spanner.edge_subgraph(keep);
    let candidates: Vec<EdgeId> = graph.edge_ids().collect();
    let options = RepairOptions::default();

    let mut scratch = RepairScratch::new();
    let cold = count_allocations(|| {
        let out = respan_candidates_with(
            &mut scratch,
            &graph,
            &damaged,
            params,
            &candidates,
            &options,
        );
        assert!(out.edges_added() > 0);
    });
    let warm = count_allocations(|| {
        let out = respan_candidates_with(
            &mut scratch,
            &graph,
            &damaged,
            params,
            &candidates,
            &options,
        );
        assert!(out.edges_added() > 0);
    });
    // The warm pass allocates only for outputs: the rebuilt CSR spanner
    // (geometric growth and self-compaction), the `added` list, and one cut
    // vector per YES certificate — ~235 on this workload. The pre-engine
    // implementation re-allocated the sweep events, a graph-sized `seen`
    // bitmap, and two fault-view bitmaps plus BFS state per candidate
    // decision, landing in the thousands.
    assert!(
        warm <= 300,
        "steady-state respan allocated {warm} times (cold pass: {cold}) \
         — per-wave setup is leaking out of the scratch"
    );
    assert!(warm < cold, "warm pass must reuse the cold pass's pools");
}

#[test]
fn steady_state_wave_allocation_is_damage_proportional() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // End-to-end churn audit: after a warm-up wave has populated the
    // oracle-owned `WaveScratch`, a steady-state wave's allocation count
    // must stay bounded — rematerialized graphs and verification sampling
    // allocate, but the per-candidate LBC setup (two fault-view bitmaps
    // plus BFS state per decision, which alone used to cost several
    // allocations times the candidate count) must not come back.
    let mut rng = StdRng::seed_from_u64(81);
    let graph = generators::connected_gnp(60, 0.15, &mut rng);
    let mut oracle =
        FaultOracle::build(graph, SpannerParams::vertex(2, 1), OracleOptions::default());
    let config = ChurnConfig::default();
    // Warm-up: grows every pooled buffer to the graph's size.
    let _ = oracle.apply_wave(&FaultSet::vertices([vid(7)]), &config);
    let allocations = count_allocations(|| {
        let outcome = oracle.apply_wave(&FaultSet::vertices([vid(23), vid(41)]), &config);
        assert!(outcome.candidates > 0);
    });
    // What remains in a steady-state wave is work-proportional, not
    // setup-proportional: graph rematerialization, the rebuilt spanner, and
    // the verification sampler's one distance-buffer copy per (source,
    // fault set) pair — ~1.8k on this workload, and bounded by the sampled
    // verification work rather than the candidate count. The pre-engine
    // implementation added several allocations per candidate LBC decision
    // on top (fault-view bitmaps, BFS arrays, path and cut vectors), which
    // is what this budget excludes.
    assert!(
        allocations <= 2_500,
        "steady-state wave allocated {allocations} times — repair setup is \
         no longer pooled"
    );
}

#[test]
fn sharded_local_cached_hits_stay_lean() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // The sharded path localizes the fault set per query (one small vector),
    // so it is not allocation-free — but a cached local hit must stay within
    // that constant, far below a tree recomputation.
    let mut rng = StdRng::seed_from_u64(79);
    let graph = generators::connected_gnp(60, 0.15, &mut rng);
    let options = ShardedOptions {
        plan: ShardPlanOptions {
            shards: 2,
            ..ShardPlanOptions::default()
        },
        ..ShardedOptions::default()
    };
    let oracle = ShardedOracle::build(graph, SpannerParams::vertex(2, 2), options);
    let (u, v) = {
        let core = oracle.plan().core(0);
        (core[0], core[core.len() - 1])
    };
    let faults = FaultSet::vertices([vid(3)]);
    let _ = oracle.distance(u, v, &faults);
    let queries = 200u64;
    let allocations = count_allocations(|| {
        for _ in 0..queries {
            let _ = oracle.distance(u, v, &faults);
        }
    });
    assert!(
        allocations <= 4 * queries,
        "sharded cached hits allocated {allocations} times for {queries} queries \
         — expected only the per-query fault localization"
    );
}
