//! Verifies the oracle's cached-tree hit path performs **zero heap
//! allocation** per query.
//!
//! A counting global allocator wraps the system allocator; the test warms
//! the shortest-path-tree cache, arms the counter, and replays cached
//! distance queries. Any allocation on that path (the pre-CSR implementation
//! cloned the fault set into a `Query`, built an owned `CacheKey` with two
//! vectors, and created a fresh `DijkstraScratch` per call) fails the test.
//!
//! The counter only *observes* — allocation behavior is unchanged. Because
//! the counter is process-global, every test in this binary serializes its
//! whole body through one mutex so a concurrently running test can never
//! leak allocations into an armed window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use ftspan::{FaultSet, SpannerParams};
use ftspan_graph::{generators, vid};
use ftspan_oracle::{FaultOracle, OracleOptions, ShardPlanOptions, ShardedOptions, ShardedOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
/// Serializes test bodies: the counter is process-global, so no other test
/// may allocate while one of them has the counter armed.
static SERIAL: Mutex<()> = Mutex::new(());

struct CountingAllocator;

// SAFETY: delegates every operation verbatim to the system allocator; the
// wrapper only increments counters.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Runs `f` with the counter armed and returns how many allocations it made.
fn count_allocations(f: impl FnOnce()) -> u64 {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    ALLOCATIONS.load(Ordering::SeqCst)
}

fn small_oracle() -> FaultOracle {
    let mut rng = StdRng::seed_from_u64(77);
    let graph = generators::connected_gnp(60, 0.15, &mut rng);
    FaultOracle::build(graph, SpannerParams::vertex(2, 2), OracleOptions::default())
}

#[test]
fn cached_distance_queries_do_not_allocate() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let oracle = small_oracle();
    let faults = FaultSet::vertices([vid(3), vid(9)]);
    // Warm-up: computes and caches the tree (allocates, unarmed), and
    // exercises the scratch pool so its vector is populated.
    assert!(oracle.distance(vid(1), vid(20), &faults).is_some());
    let allocations = count_allocations(|| {
        for _ in 0..1_000 {
            let d = oracle.distance(vid(1), vid(20), &faults);
            assert!(d.is_some());
        }
    });
    assert_eq!(
        allocations, 0,
        "cached-tree distance hit path must not touch the heap"
    );
}

#[test]
fn cached_hits_on_either_endpoint_do_not_allocate() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let oracle = small_oracle();
    let faults = FaultSet::vertices([vid(5)]);
    assert!(oracle.distance(vid(2), vid(30), &faults).is_some());
    let allocations = count_allocations(|| {
        for _ in 0..500 {
            // Symmetric query: served from the same tree, rooted at the
            // other endpoint.
            let d = oracle.distance(vid(30), vid(2), &faults);
            assert!(d.is_some());
            // A different target under the same fault set: same tree again.
            let d = oracle.distance(vid(2), vid(31), &faults);
            assert!(d.is_some());
        }
    });
    assert_eq!(allocations, 0, "either-endpoint hits must not allocate");
}

#[test]
fn edge_fault_cached_hits_do_not_allocate() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = StdRng::seed_from_u64(78);
    let graph = generators::connected_gnp(40, 0.2, &mut rng);
    let oracle = FaultOracle::build(graph, SpannerParams::edge(2, 1), OracleOptions::default());
    let faults = FaultSet::edges([ftspan_graph::eid(0), ftspan_graph::eid(4)]);
    assert!(oracle.distance(vid(1), vid(12), &faults).is_some());
    let allocations = count_allocations(|| {
        for _ in 0..500 {
            let d = oracle.distance(vid(1), vid(12), &faults);
            assert!(d.is_some());
        }
    });
    assert_eq!(
        allocations, 0,
        "edge-fault hits must not re-translate fault ids"
    );
}

#[test]
fn sharded_local_cached_hits_stay_lean() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // The sharded path localizes the fault set per query (one small vector),
    // so it is not allocation-free — but a cached local hit must stay within
    // that constant, far below a tree recomputation.
    let mut rng = StdRng::seed_from_u64(79);
    let graph = generators::connected_gnp(60, 0.15, &mut rng);
    let options = ShardedOptions {
        plan: ShardPlanOptions {
            shards: 2,
            ..ShardPlanOptions::default()
        },
        ..ShardedOptions::default()
    };
    let oracle = ShardedOracle::build(graph, SpannerParams::vertex(2, 2), options);
    let (u, v) = {
        let core = oracle.plan().core(0);
        (core[0], core[core.len() - 1])
    };
    let faults = FaultSet::vertices([vid(3)]);
    let _ = oracle.distance(u, v, &faults);
    let queries = 200u64;
    let allocations = count_allocations(|| {
        for _ in 0..queries {
            let _ = oracle.distance(u, v, &faults);
        }
    });
    assert!(
        allocations <= 4 * queries,
        "sharded cached hits allocated {allocations} times for {queries} queries \
         — expected only the per-query fault localization"
    );
}
