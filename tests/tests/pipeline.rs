//! End-to-end integration tests: generate a workload, run every construction,
//! verify the fault-tolerance property, and check the size bounds.

use ftspan::verify::{verify_spanner, VerificationMode};
use ftspan::{bounds, Algorithm, FaultModel, SpannerBuilder, SpannerParams};
use ftspan_graph::io;
use ftspan_integration_tests::small_workloads;

#[test]
fn every_algorithm_produces_a_valid_vft_spanner_on_every_workload() {
    let params = SpannerParams::vertex(2, 1);
    for (name, graph) in small_workloads(100) {
        for algorithm in [
            Algorithm::PolyGreedy,
            Algorithm::ExactGreedy,
            Algorithm::DinitzKrauthgamer,
            Algorithm::DinitzKrauthgamerBaswanaSen,
        ] {
            let result = SpannerBuilder::from_params(params)
                .algorithm(algorithm)
                .seed(17)
                .build(&graph)
                .unwrap_or_else(|e| panic!("{name}/{algorithm:?}: {e}"));
            assert!(
                result.spanner.is_edge_subgraph_of(&graph),
                "{name}/{algorithm:?}: spanner is not a subgraph"
            );
            let report = verify_spanner(
                &graph,
                &result.spanner,
                params,
                VerificationMode::Exhaustive,
            );
            assert!(
                report.is_valid(),
                "{name}/{algorithm:?}: {:?}",
                report.violations
            );
        }
    }
}

#[test]
fn modified_greedy_handles_edge_faults_on_every_workload() {
    let params = SpannerParams::edge(2, 1);
    for (name, graph) in small_workloads(200) {
        let result = SpannerBuilder::from_params(params)
            .fault_model(FaultModel::Edge)
            .build(&graph)
            .unwrap();
        let report = verify_spanner(
            &graph,
            &result.spanner,
            params,
            VerificationMode::Exhaustive,
        );
        assert!(report.is_valid(), "{name}: {:?}", report.violations);
    }
}

#[test]
fn poly_greedy_respects_theorem_8_while_exact_respects_bp19() {
    let params = SpannerParams::vertex(2, 2);
    for (name, graph) in small_workloads(300) {
        let n = graph.vertex_count();
        let poly = SpannerBuilder::from_params(params)
            .algorithm(Algorithm::PolyGreedy)
            .build(&graph)
            .unwrap();
        let exact = SpannerBuilder::from_params(params)
            .algorithm(Algorithm::ExactGreedy)
            .build(&graph)
            .unwrap();
        assert!(
            (poly.spanner.edge_count() as f64) <= bounds::poly_greedy_size_bound(n, 2, 2),
            "{name}: poly greedy exceeded Theorem 8"
        );
        assert!(
            (exact.spanner.edge_count() as f64) <= bounds::optimal_ft_size_bound(n, 2, 2),
            "{name}: exact greedy exceeded the BP19 bound"
        );
    }
}

#[test]
fn spanners_survive_an_io_round_trip() {
    let params = SpannerParams::vertex(2, 1);
    for (name, graph) in small_workloads(400) {
        let result = SpannerBuilder::from_params(params).build(&graph).unwrap();
        let text = io::to_edge_list(&result.spanner);
        let back = io::from_edge_list(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(back.vertex_count(), result.spanner.vertex_count());
        assert_eq!(back.edge_count(), result.spanner.edge_count());
        // The round-tripped spanner is still a valid FT spanner of the input.
        let report = verify_spanner(&graph, &back, params, VerificationMode::Exhaustive);
        assert!(report.is_valid(), "{name}: {:?}", report.violations);
    }
}

#[test]
fn increasing_k_reduces_size_on_dense_inputs() {
    for (name, graph) in small_workloads(500) {
        if graph.edge_count() < 3 * graph.vertex_count() {
            continue; // only meaningful for dense workloads
        }
        let small_k = SpannerBuilder::new(2, 1).build(&graph).unwrap();
        let large_k = SpannerBuilder::new(4, 1).build(&graph).unwrap();
        assert!(
            large_k.spanner.edge_count() <= small_k.spanner.edge_count(),
            "{name}: larger stretch should never need more edges"
        );
    }
}
