//! The sharded differential suite: on every graph family, every answer of
//! the [`ShardedOracle`] must equal the single global [`FaultOracle`]'s
//! answer **exactly** — same `Option<f64>` distances bit for bit, same
//! reachability, and path answers that are genuine shortest walks of the
//! same length. The sharded oracle is a scaling layer, not an
//! approximation, and this suite is the contract that keeps it that way.
//!
//! Both oracles run the same deterministic spanner construction on the same
//! input, so they serve the same spanner; the comparison therefore isolates
//! the serving layer (regions, boundary stitching, certificates, fallback).

use ftspan::{sample_fault_set, FaultModel, SpannerParams};
use ftspan_graph::{generators, vid, Graph};
use ftspan_integration_tests::rng;
use ftspan_oracle::{
    Answer, ChurnConfig, FaultOracle, HierarchicalOptions, HierarchicalOracle, OracleOptions,
    Query, ShardPlanOptions, ShardedOptions, ShardedOracle,
};
use rand::Rng;

/// Number of random fault sets exercised per family (the issue's floor is
/// 50).
const FAULT_SETS: usize = 55;
/// Query pairs compared under each fault set.
const PAIRS_PER_FAULT_SET: usize = 4;

fn sharded_options(shards: usize) -> ShardedOptions {
    ShardedOptions {
        plan: ShardPlanOptions {
            shards,
            ..ShardPlanOptions::default()
        },
        ..ShardedOptions::default()
    }
}

/// Runs the differential comparison for one graph family.
///
/// `tolerance` is 0.0 for unit-weight families — distances are small
/// integers in `f64`, so answers must be **bit-identical** — and a 1e-9
/// absolute slack for weighted families, where two tied shortest paths can
/// accumulate the same real length to float sums an ulp apart, making exact
/// float equality between any two correct Dijkstra runs unsound to demand.
fn differential(
    name: &str,
    graph: Graph,
    params: SpannerParams,
    model: FaultModel,
    shards: usize,
    seed: u64,
    tolerance: f64,
) {
    let n = graph.vertex_count();
    let single = FaultOracle::build(graph.clone(), params, OracleOptions::default());
    let sharded = ShardedOracle::build(graph, params, sharded_options(shards));
    assert_eq!(
        single.spanner().edge_count(),
        sharded.spanner().edge_count(),
        "{name}: the deterministic construction must yield the same spanner"
    );

    let mut r = rng(seed);
    let f = single.params().f() as usize;
    for round in 0..FAULT_SETS {
        // |F| <= f, the regime the spanner is designed for; a few rounds use
        // smaller sets so the empty set and partial sets are covered too.
        let size = if round % 7 == 0 { round % (f + 1) } else { f };
        let faults = sample_fault_set(single.graph(), model, size, &[], &mut r);
        for _ in 0..PAIRS_PER_FAULT_SET {
            let u = vid(r.gen_range(0..n));
            let v = vid(r.gen_range(0..n));
            let query = if round % 3 == 0 {
                Query::path(u, v, faults.clone())
            } else {
                Query::distance(u, v, faults.clone())
            };
            let expected = single.answer(&query);
            let got = sharded.answer(&query);
            match (expected.distance, got.distance) {
                (None, None) => {}
                (Some(want), Some(have)) if (want - have).abs() <= tolerance => {}
                other => panic!("{name} round {round}: distance diverged for {query:?}: {other:?}"),
            }
            match (&expected.path, &got.path) {
                (None, None) => {}
                (Some(reference), Some(path)) => {
                    // Shortest paths need not be unique, so compare walks,
                    // not vertex sequences: same endpoints, same total
                    // weight, every hop a live spanner edge.
                    assert_eq!(path.first(), reference.first());
                    assert_eq!(path.last(), reference.last());
                    let mut walked = 0.0;
                    for pair in path.windows(2) {
                        let e = sharded
                            .spanner()
                            .edge_between(pair[0], pair[1])
                            .unwrap_or_else(|| {
                                panic!("{name} round {round}: non-spanner hop in {path:?}")
                            });
                        walked += sharded.spanner().weight(e);
                        assert!(!query.faults.contains_vertex(pair[0]));
                    }
                    let d = got.distance.expect("path answers carry a distance");
                    assert!(
                        (walked - d).abs() < 1e-9,
                        "{name} round {round}: path length {walked} != distance {d}"
                    );
                }
                other => panic!("{name} round {round}: path presence diverged: {other:?}"),
            }
        }
    }

    let snap = sharded.metrics().snapshot();
    assert_eq!(snap.queries as usize, FAULT_SETS * PAIRS_PER_FAULT_SET);
    assert!(
        snap.local + snap.stitched > 0,
        "{name}: some traffic must be served from shard state"
    );
}

/// Family 1: Erdős–Rényi, vertex faults.
#[test]
fn erdos_renyi_matches_single_oracle() {
    let mut r = rng(8101);
    let graph = generators::connected_gnp(120, 0.06, &mut r);
    differential(
        "gnp-120",
        graph,
        SpannerParams::vertex(2, 2),
        FaultModel::Vertex,
        4,
        1,
        0.0,
    );
}

/// Family 2: scale-free (Barabási–Albert), vertex faults. Hubs make the
/// boundary dense, which stresses the portal stitching.
#[test]
fn scale_free_matches_single_oracle() {
    let mut r = rng(8102);
    let graph = generators::barabasi_albert(120, 3, &mut r);
    differential(
        "ba-120",
        graph,
        SpannerParams::vertex(2, 1),
        FaultModel::Vertex,
        3,
        2,
        0.0,
    );
}

/// Family 3: small-world (Watts–Strogatz), edge faults — the fault ids go
/// through two rounds of translation (global graph → region base → region
/// spanner), which this family pins down.
#[test]
fn small_world_edge_faults_match_single_oracle() {
    let mut r = rng(8103);
    let graph = generators::watts_strogatz(100, 4, 0.2, &mut r);
    differential(
        "ws-100",
        graph,
        SpannerParams::edge(2, 2),
        FaultModel::Edge,
        3,
        3,
        0.0,
    );
}

/// Family 4: weighted random geometric — float distances agree to within an
/// ulp-scale tolerance (tied shortest paths can accumulate equal real
/// lengths to float sums one ulp apart; see `differential`).
#[test]
fn weighted_geometric_matches_single_oracle() {
    let mut r = rng(8104);
    let mut graph = generators::random_geometric(90, 0.18, &mut r);
    generators::overlay_random_spanning_tree(&mut graph, &mut r);
    let graph = generators::with_random_weights(&graph, 1.0, 8.0, &mut r);
    differential(
        "geo-90-weighted",
        graph,
        SpannerParams::vertex(2, 1),
        FaultModel::Vertex,
        3,
        4,
        1e-9,
    );
}

/// A 1-shard plan is the degenerate case: one region covering the graph, an
/// empty frontier, and therefore no certificate failures and no global
/// fallbacks — the "no sharding tax" configuration the criterion bench
/// measures throughput on.
#[test]
fn one_shard_plan_is_equivalent_and_never_falls_back() {
    let mut r = rng(8105);
    let graph = generators::connected_gnp(80, 0.08, &mut r);
    let params = SpannerParams::vertex(2, 1);
    let single = FaultOracle::build(graph.clone(), params, OracleOptions::default());
    let sharded = ShardedOracle::build(graph, params, sharded_options(1));
    for round in 0..50u64 {
        let faults = sample_fault_set(single.graph(), FaultModel::Vertex, 1, &[], &mut r);
        let u = vid(r.gen_range(0..80));
        let v = vid(r.gen_range(0..80));
        assert_eq!(
            sharded.distance(u, v, &faults),
            single.distance(u, v, &faults),
            "round {round}"
        );
    }
    let snap = sharded.metrics().snapshot();
    assert_eq!(snap.global_fallbacks, 0);
    assert_eq!(snap.local, snap.queries);
}

/// Batched differential: the routed batch path must agree with the single
/// oracle's batch path query for query.
#[test]
fn batched_answers_match_single_oracle() {
    let mut r = rng(8106);
    let graph = generators::connected_gnp(100, 0.07, &mut r);
    let params = SpannerParams::vertex(2, 2);
    let single = FaultOracle::build(graph.clone(), params, OracleOptions::default());
    let sharded = ShardedOracle::build(graph, params, sharded_options(4));
    let queries: Vec<Query> = (0..400)
        .map(|i| {
            let faults = sample_fault_set(single.graph(), FaultModel::Vertex, 2, &[], &mut r);
            let u = vid(r.gen_range(0..100));
            let v = vid(r.gen_range(0..100));
            if i % 4 == 0 {
                Query::path(u, v, faults)
            } else {
                Query::distance(u, v, faults)
            }
        })
        .collect();
    let a = single.answer_batch(&queries);
    let b = sharded.answer_batch(&queries);
    for ((query, x), y) in queries.iter().zip(&a).zip(&b) {
        assert_eq!(x.distance, y.distance, "{query:?}");
        assert_eq!(x.path.is_some(), y.path.is_some());
    }
}

/// Checks one backend's answer against the single oracle's: bit-identical
/// `Option<f64>` distance, and — for path queries — a genuine walk on the
/// given live spanner with the same endpoints and total weight.
fn assert_answer_matches(
    name: &str,
    round: usize,
    spanner: &Graph,
    query: &Query,
    expected: &Answer,
    got: &Answer,
) {
    assert_eq!(
        expected.distance, got.distance,
        "{name} round {round}: distance diverged for {query:?}"
    );
    match (&expected.path, &got.path) {
        (None, None) => {}
        (Some(reference), Some(path)) => {
            assert_eq!(path.first(), reference.first(), "{name} round {round}");
            assert_eq!(path.last(), reference.last(), "{name} round {round}");
            let mut walked = 0.0;
            for pair in path.windows(2) {
                let e = spanner
                    .edge_between(pair[0], pair[1])
                    .unwrap_or_else(|| panic!("{name} round {round}: non-spanner hop in {path:?}"));
                walked += spanner.weight(e);
                assert!(!query.faults.contains_vertex(pair[0]));
            }
            let d = got.distance.expect("path answers carry a distance");
            assert!(
                (walked - d).abs() < 1e-9,
                "{name} round {round}: path length {walked} != distance {d}"
            );
        }
        other => panic!("{name} round {round}: path presence diverged: {other:?}"),
    }
}

/// The scale-tier contract, end to end: single oracle, flat sharded oracle,
/// and two-level hierarchical oracle — built from the same deterministic
/// construction over the same leaf-plan options — agree **exactly** on every
/// query, and keep agreeing across permanent fault waves (each backend runs
/// its own churn loop: global repair plus shard/leaf rebuild fan-out).
#[test]
fn hierarchical_matches_flat_and_single_across_churn() {
    let mut r = rng(8107);
    let graph = generators::connected_gnp(140, 0.05, &mut r);
    let n = graph.vertex_count();
    let params = SpannerParams::vertex(2, 2);
    let hier_options = HierarchicalOptions {
        plan: ShardPlanOptions {
            shards: 4,
            ..ShardPlanOptions::default()
        },
        ..HierarchicalOptions::default()
    };

    let mut single = FaultOracle::build(graph.clone(), params, OracleOptions::default());
    let mut flat = ShardedOracle::build(graph.clone(), params, hier_options.flat());
    let mut hier = HierarchicalOracle::build(graph, params, hier_options);
    let config = ChurnConfig::default();

    for wave_round in 0..4usize {
        assert_eq!(
            single.spanner().edge_count(),
            flat.spanner().edge_count(),
            "wave {wave_round}: flat spanner diverged"
        );
        assert_eq!(
            single.spanner().edge_count(),
            hier.spanner().edge_count(),
            "wave {wave_round}: hierarchical spanner diverged"
        );

        for query_round in 0..12usize {
            let size = query_round % 3; // |F| in {0, 1, 2}, design budget f = 2
            let faults = sample_fault_set(single.graph(), FaultModel::Vertex, size, &[], &mut r);
            for _ in 0..3 {
                let u = vid(r.gen_range(0..n));
                let v = vid(r.gen_range(0..n));
                let query = if query_round % 2 == 0 {
                    Query::path(u, v, faults.clone())
                } else {
                    Query::distance(u, v, faults.clone())
                };
                let expected = single.answer(&query);
                let round = wave_round * 100 + query_round;
                assert_answer_matches(
                    "flat",
                    round,
                    flat.spanner(),
                    &query,
                    &expected,
                    &flat.answer(&query),
                );
                assert_answer_matches(
                    "hier",
                    round,
                    hier.spanner(),
                    &query,
                    &expected,
                    &hier.answer(&query),
                );
            }
        }

        // Permanent damage: the same wave hits all three backends, each of
        // which repairs through its own churn path.
        let wave = sample_fault_set(single.graph(), FaultModel::Vertex, 2, &[], &mut r);
        let single_outcome = single.apply_wave(&wave, &config);
        let flat_outcome = flat.apply_wave(&wave, &config);
        let hier_outcome = hier.apply_wave(&wave, &config);
        assert_eq!(
            single_outcome.edges_added, flat_outcome.global.edges_added,
            "wave {wave_round}: flat repair diverged"
        );
        assert_eq!(
            single_outcome.edges_added, hier_outcome.global.edges_added,
            "wave {wave_round}: hierarchical repair diverged"
        );
    }

    // Traffic must actually exercise both scaling layers, not just the
    // global fallback.
    let flat_snap = flat.metrics().snapshot();
    assert!(flat_snap.local + flat_snap.stitched > 0);
    let hier_snap = hier.metrics().snapshot();
    assert!(hier_snap.local + hier_snap.stitched > 0);
}
