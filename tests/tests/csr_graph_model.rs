//! Property tests pinning the CSR `Graph` core to a straightforward
//! reference model.
//!
//! The graph stores adjacency as CSR slices plus a pending append buffer and
//! compacts (explicitly or automatically) at layout-only boundaries. These
//! properties assert that no observation — neighbor sets, edge ids, degrees,
//! `has_edge_between`, BFS hop distances, Dijkstra distances, with or
//! without faults — depends on *when* compaction happened, across all four
//! random generator families and arbitrary interleavings of `add_edge` and
//! `compact`.

use std::collections::BTreeSet;

use ftspan_graph::bfs::bfs_hop_distances;
use ftspan_graph::dijkstra::{dijkstra_distances, DijkstraScratch};
use ftspan_graph::{generators, vid, EdgeId, FaultView, Graph, GraphView, VertexId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The reference model: the dense edge table, which the CSR layers are
/// derived from and which no refactor may disturb.
fn edge_table(g: &Graph) -> Vec<(VertexId, VertexId, f64)> {
    g.edges()
        .map(|(_, e)| {
            let (u, v) = e.endpoints();
            (u, v, e.weight())
        })
        .collect()
}

/// Model adjacency rebuilt from the edge table alone.
fn model_adjacency(g: &Graph) -> Vec<BTreeSet<(VertexId, EdgeId)>> {
    let mut adj = vec![BTreeSet::new(); g.vertex_count()];
    for (id, e) in g.edges() {
        let (u, v) = e.endpoints();
        adj[u.index()].insert((v, id));
        adj[v.index()].insert((u, id));
    }
    adj
}

/// Asserts every observable of `g` against the reference model.
fn assert_matches_model(g: &Graph) -> Result<(), TestCaseError> {
    let adj = model_adjacency(g);
    for (v, model) in adj.iter().enumerate() {
        let observed: BTreeSet<(VertexId, EdgeId)> = g.neighbors(vid(v)).collect();
        prop_assert_eq!(&observed, model);
        prop_assert_eq!(g.degree(vid(v)), model.len());
        for &(nbr, id) in model {
            prop_assert_eq!(g.edge_between(vid(v), nbr), Some(id));
            prop_assert!(g.has_edge_between(v, nbr.index()));
        }
    }
    // Negative membership: every non-adjacent pair must answer None.
    for (u, model) in adj.iter().enumerate() {
        for w in 0..g.vertex_count() {
            let expected = model
                .iter()
                .find(|&&(nbr, _)| nbr == vid(w))
                .map(|&(_, id)| id);
            prop_assert_eq!(g.edge_between(vid(u), vid(w)), expected);
        }
    }
    Ok(())
}

/// One of the four random generator families, by index.
fn family_graph(family: usize, n: usize, seed: u64) -> Graph {
    let mut r = StdRng::seed_from_u64(seed);
    match family {
        0 => generators::connected_gnp(n, 0.25, &mut r),
        1 => generators::barabasi_albert(n, 3, &mut r),
        2 => generators::watts_strogatz(n, 4, 0.2, &mut r),
        _ => {
            // Geometric with Euclidean weights: the weighted family.
            let mut g = generators::random_geometric(n, 0.35, &mut r);
            generators::overlay_random_spanning_tree(&mut g, &mut r);
            g
        }
    }
}

/// Rebuilds the same logical graph with `compact()` interleaved every
/// `stride` insertions (stride 0 = never explicitly, exercising only
/// self-compaction).
fn rebuild_with_compactions(g: &Graph, stride: usize) -> Graph {
    let mut out = Graph::new(g.vertex_count());
    for (i, (u, v, w)) in edge_table(g).into_iter().enumerate() {
        let id = out.add_edge(u.index(), v.index(), w);
        assert_eq!(id.index(), i, "edge ids are insertion-ordered");
        if stride > 0 && i % stride == stride - 1 {
            out.compact();
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn csr_graph_matches_the_reference_model(
        family in 0usize..4,
        n in 10usize..40,
        seed in 0u64..1_000,
    ) {
        let g = family_graph(family, n, seed);
        assert_matches_model(&g)?;
        // A fully compacted copy observes identically.
        let mut compacted = g.clone();
        compacted.compact();
        prop_assert!(compacted.is_compacted());
        assert_matches_model(&compacted)?;
        prop_assert_eq!(g.is_unit_weighted(), compacted.is_unit_weighted());
        prop_assert_eq!(g.max_degree(), compacted.max_degree());
    }

    #[test]
    fn interleaved_compaction_never_changes_observations(
        family in 0usize..4,
        n in 10usize..32,
        seed in 0u64..1_000,
        stride in 0usize..9,
    ) {
        let g = family_graph(family, n, seed);
        let rebuilt = rebuild_with_compactions(&g, stride);
        prop_assert_eq!(edge_table(&g), edge_table(&rebuilt));
        assert_matches_model(&rebuilt)?;

        // Traversal answers are layout-independent: BFS hop distances and
        // Dijkstra distances agree between the two copies from every source.
        for s in 0..g.vertex_count() {
            prop_assert_eq!(
                bfs_hop_distances(&g, vid(s)),
                bfs_hop_distances(&rebuilt, vid(s))
            );
            prop_assert_eq!(
                dijkstra_distances(&g, vid(s)),
                dijkstra_distances(&rebuilt, vid(s))
            );
        }

        // Same under a fault set: block a few vertices in both views.
        let blocked: Vec<VertexId> = (0..n).step_by(5).map(vid).collect();
        let view_a = FaultView::with_blocked_vertices(&g, blocked.iter().copied());
        let view_b = FaultView::with_blocked_vertices(&rebuilt, blocked.iter().copied());
        let source = vid(1);
        prop_assert_eq!(
            bfs_hop_distances(&view_a, source),
            bfs_hop_distances(&view_b, source)
        );
        // The scratch-based tree builder (Dial lane on unit weights, heap
        // lane otherwise) reports the same distances on both layouts.
        let mut scratch = DijkstraScratch::new();
        let tree_a = scratch.shortest_path_tree(&view_a, source);
        let tree_b = scratch.shortest_path_tree(&view_b, source);
        prop_assert_eq!(tree_a.distances(), tree_b.distances());
    }

    #[test]
    fn scratch_tree_distances_match_one_shot_dijkstra(
        family in 0usize..4,
        n in 10usize..32,
        seed in 0u64..1_000,
    ) {
        // The Dial (unit-weight) and heap lanes must both reproduce the
        // one-shot reference distances bit-for-bit.
        let g = family_graph(family, n, seed);
        let mut scratch = DijkstraScratch::new();
        for s in (0..g.vertex_count()).step_by(3) {
            let tree = scratch.shortest_path_tree(&g, vid(s));
            prop_assert_eq!(tree.distances(), &dijkstra_distances(&g, vid(s))[..]);
        }
    }
}

#[test]
fn pending_and_core_layers_answer_identically() {
    // Directed walk through the layering: a half-compacted graph must be
    // indistinguishable from its fully compacted twin.
    let mut g = Graph::new(12);
    for i in 0..11 {
        g.add_unit_edge(i, i + 1);
    }
    g.compact();
    for i in 0..9 {
        g.add_unit_edge(i, i + 3); // pending layer on top of the CSR core
    }
    let mut twin = g.clone();
    twin.compact();
    for v in 0..12 {
        let a: BTreeSet<_> = g.neighbors(vid(v)).collect();
        let b: BTreeSet<_> = twin.neighbors(vid(v)).collect();
        assert_eq!(a, b);
    }
    assert_eq!(
        bfs_hop_distances(&g, vid(0)),
        bfs_hop_distances(&twin, vid(0))
    );
    assert_eq!(GraphView::live_vertex_count(&g), 12);
}
