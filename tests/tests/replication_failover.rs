//! Primary-kill failover drills, end to end over TCP and through the
//! `ChaosProxy`: a replica bootstraps from a live primary, follows its
//! wave journal, survives the primary's death (mid-stream and
//! mid-snapshot-download), gets promoted, and must then answer
//! **bit-identically** to a never-failed mirror oracle that applied the
//! exact same wave history directly — including waves accepted only
//! *after* the promotion.
//!
//! The recovery contract under test: `PROMOTE` returns the epoch the
//! replica verifiably reached, so the operator re-drives exactly the waves
//! past that epoch from the ops log and the promoted replica converges to
//! the dead primary's intended state — no wave lost, none applied twice.

use std::time::{Duration, Instant};

use ftspan::{sample_fault_set, FaultModel, FaultSet, SpannerParams};
use ftspan_graph::{generators, vid};
use ftspan_integration_tests::rng;
use ftspan_oracle::{
    ChurnConfig, OracleService, Query, ServiceConfig, ShardPlanOptions, ShardedOptions,
    ShardedOracle, Snapshot,
};
use ftspan_server::{
    BatchEntry, ChaosProxy, Client, ProxyFault, ProxyPlan, ReplicaServer, Reply, Server,
    ServerConfig,
};
use rand::rngs::StdRng;
use rand::Rng;

fn build_backend(seed: u64) -> ShardedOracle {
    let mut r = rng(seed);
    let graph = generators::connected_gnp(60, 0.1, &mut r);
    let options = ShardedOptions {
        plan: ShardPlanOptions {
            shards: 3,
            ..ShardPlanOptions::default()
        },
        ..ShardedOptions::default()
    };
    ShardedOracle::build(graph, SpannerParams::vertex(2, 2), options)
}

fn battery(oracle: &ShardedOracle, seed: u64) -> Vec<Query> {
    let mut r: StdRng = rng(seed);
    let n = oracle.graph().vertex_count();
    (0..30)
        .map(|i| {
            let u = vid(r.gen_range(0..n));
            let mut v = vid(r.gen_range(0..n));
            while v == u {
                v = vid(r.gen_range(0..n));
            }
            let faults = sample_fault_set(oracle.graph(), FaultModel::Vertex, i % 3, &[], &mut r);
            if i % 3 == 0 {
                Query::path(u, v, faults)
            } else {
                Query::distance(u, v, faults)
            }
        })
        .collect()
}

/// Bit-exact wire-vs-mirror comparison: `f64` bits and witness paths.
fn assert_matches_mirror(label: &str, client: &mut Client, mirror: &ShardedOracle, seed: u64) {
    let queries = battery(mirror, seed);
    let want = mirror.answer_batch(&queries);
    let entries = client.batch(queries.clone()).expect("battery served");
    for ((query, want), got) in queries.iter().zip(&want).zip(&entries) {
        let BatchEntry::Answered(got) = got else {
            panic!("{label}: unexpected shed for {query:?}");
        };
        assert_eq!(
            want.distance().map(f64::to_bits),
            got.distance.map(f64::to_bits),
            "{label}: distance bits diverged for {query:?}"
        );
        assert_eq!(
            want.path(),
            got.path.as_deref(),
            "{label}: witness path diverged for {query:?}"
        );
    }
}

/// Polls the replica's applied epoch until it reaches `target` — the
/// subscription is asynchronous, but bounded: well under a second on
/// loopback, and the deadline turns a stuck follower into a test failure
/// instead of a hang.
fn await_epoch(replica: &ReplicaServer<ShardedOracle>, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while replica.epoch() < target {
        assert!(
            Instant::now() < deadline,
            "replica stuck at epoch {} short of {target}",
            replica.epoch()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Drill A — the primary dies **mid-stream**: the proxy carrying the
/// replica's bootstrap and subscription is yanked (an abrupt socket kill
/// that respects no frame boundary), then the primary itself shuts down.
/// The replica keeps serving reads at the epoch it verified, `PROMOTE`
/// reports that epoch, the lost tail of the wave history is re-driven,
/// and the promoted replica is bit-identical to the never-failed mirror —
/// through fresh post-promotion waves too.
#[test]
fn primary_killed_mid_stream_promotes_a_bit_identical_replica() {
    let mut mirror = build_backend(9301);
    let churn = ChurnConfig::default();
    let mut r = rng(9310);
    let waves: Vec<FaultSet> = (0..8)
        .map(|_| sample_fault_set(mirror.graph(), FaultModel::Vertex, 2, &[], &mut r))
        .collect();

    let service = OracleService::new(build_backend(9301), ServiceConfig::default());
    let primary =
        Server::start(service, "127.0.0.1:0", ServerConfig::default()).expect("primary starts");
    let mut ops = Client::connect(primary.local_addr()).expect("ops client connects");

    // Age the primary before the replica exists, so the bootstrap snapshot
    // is mid-churn; the mirror applies the same history directly.
    for wave in &waves[..3] {
        ops.wave(wave.clone()).expect("wave accepted");
        mirror.apply_wave(wave, &churn);
    }

    // The replica reaches the primary only through the chaos proxy — the
    // cable we will pull.
    let proxy =
        ChaosProxy::start(primary.local_addr(), ProxyPlan::passthrough()).expect("proxy starts");
    let replica: ReplicaServer<ShardedOracle> = ReplicaServer::start(
        proxy.local_addr(),
        "127.0.0.1:0",
        ServiceConfig::default(),
        ServerConfig::default(),
    )
    .expect("replica bootstraps through the proxy");
    await_epoch(&replica, 3);

    // While following, the replica serves reads bit-identically and
    // rejects waves with a typed error; the primary rejects PROMOTE.
    let mut reader = Client::connect(replica.local_addr()).expect("reader connects");
    assert_matches_mirror("following", &mut reader, &mirror, 41);
    match reader.wave(waves[3].clone()).expect("a typed reply") {
        Reply::Error(message) => assert!(message.contains("read-only"), "{message}"),
        other => panic!("a follower must reject WAVE, got {other:?}"),
    }
    assert!(
        ops.promote().is_err(),
        "a primary must reject PROMOTE with a typed error"
    );

    // More history lands; the stream races the kill below, so the replica
    // may verify any prefix of it — the promotion epoch tells us which.
    for wave in &waves[3..6] {
        ops.wave(wave.clone()).expect("wave accepted");
        mirror.apply_wave(wave, &churn);
    }

    // Pull the cable mid-stream, then kill the primary outright.
    proxy.shutdown();
    let _ = primary.shutdown();

    // The orphaned replica still serves reads. Promote it and re-drive the
    // waves past its verified epoch from the ops log.
    assert!(!replica.is_promoted());
    let mut failover = Client::connect(replica.local_addr()).expect("failover client connects");
    let promoted_at = failover.promote().expect("promotion succeeds");
    assert!(replica.is_promoted());
    assert!(
        (3..=6).contains(&promoted_at),
        "promoted at epoch {promoted_at}, expected within the streamed window"
    );
    assert!(
        replica.divergence().is_none(),
        "a killed stream must not read as divergence"
    );
    for wave in &waves[usize::try_from(promoted_at).unwrap()..6] {
        failover
            .wave(wave.clone())
            .expect("re-driven wave accepted");
    }
    assert_eq!(replica.epoch(), 6, "re-drive must close the gap exactly");
    assert_matches_mirror("promoted", &mut failover, &mirror, 42);

    // The promoted replica is a real primary: fresh waves land and the
    // answers still track the mirror bit-for-bit.
    for wave in &waves[6..] {
        failover.wave(wave.clone()).expect("fresh wave accepted");
        mirror.apply_wave(wave, &churn);
    }
    assert_matches_mirror("post-promotion waves", &mut failover, &mirror, 43);

    // Convergence in full: the handed-back service re-captures to the
    // mirror's exact bytes.
    drop(reader);
    drop(failover);
    let service = replica.shutdown();
    assert_eq!(
        Snapshot::capture(&*service.oracle()),
        Snapshot::capture(&mirror),
        "promoted replica must be byte-identical to the never-failed mirror"
    );
}

/// Drill B — the primary dies **mid-snapshot**: the proxy cuts the
/// download partway through a chunk. The bootstrap must fail with a typed
/// I/O error (never hang, never restore a truncated snapshot), and a
/// retry against the healthy primary succeeds and follows to convergence.
#[test]
fn primary_killed_mid_snapshot_fails_typed_then_retries_clean() {
    let mut mirror = build_backend(9302);
    let churn = ChurnConfig::default();
    let mut r = rng(9320);
    let waves: Vec<FaultSet> = (0..4)
        .map(|_| sample_fault_set(mirror.graph(), FaultModel::Vertex, 2, &[], &mut r))
        .collect();

    // Small chunks so the download is a real multi-frame stream.
    let config = ServerConfig {
        snapshot_chunk_len: 512,
        ..ServerConfig::default()
    };
    let service = OracleService::new(build_backend(9302), ServiceConfig::default());
    let primary = Server::start(service, "127.0.0.1:0", config).expect("primary starts");
    let mut ops = Client::connect(primary.local_addr()).expect("ops client connects");
    for wave in &waves[..2] {
        ops.wave(wave.clone()).expect("wave accepted");
        mirror.apply_wave(wave, &churn);
    }

    // The mirror is bit-identical to the primary, so its capture tells us
    // the download size — cut the reply leg halfway through it.
    let snapshot_len = Snapshot::capture(&mirror).len();
    assert!(snapshot_len > 1024, "snapshot too small to cut mid-chunk");
    let proxy = ChaosProxy::start(
        primary.local_addr(),
        ProxyPlan {
            to_server: ProxyFault::None,
            to_client: ProxyFault::CloseAfter {
                bytes: snapshot_len / 2,
            },
        },
    )
    .expect("proxy starts");

    let died = ReplicaServer::<ShardedOracle>::start(
        proxy.local_addr(),
        "127.0.0.1:0",
        ServiceConfig::default(),
        ServerConfig::default(),
    )
    .expect_err("a truncated snapshot download must be a typed error");
    assert!(
        matches!(
            died.kind(),
            std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::BrokenPipe
        ),
        "unexpected bootstrap failure kind: {died}"
    );
    proxy.shutdown();

    // Retry against the healthy primary: bootstrap, follow, survive the
    // primary's death, promote, re-drive, converge.
    let replica: ReplicaServer<ShardedOracle> = ReplicaServer::start(
        primary.local_addr(),
        "127.0.0.1:0",
        ServiceConfig::default(),
        ServerConfig::default(),
    )
    .expect("retry bootstraps clean");
    for wave in &waves[2..] {
        ops.wave(wave.clone()).expect("wave accepted");
        mirror.apply_wave(wave, &churn);
    }
    await_epoch(&replica, 4);
    let _ = primary.shutdown();

    let mut failover = Client::connect(replica.local_addr()).expect("failover client connects");
    let promoted_at = failover.promote().expect("promotion succeeds");
    assert_eq!(promoted_at, 4, "the replica had already verified epoch 4");
    assert_matches_mirror("promoted", &mut failover, &mirror, 44);

    drop(failover);
    let service = replica.shutdown();
    assert_eq!(
        Snapshot::capture(&*service.oracle()),
        Snapshot::capture(&mirror),
        "retried replica must be byte-identical to the never-failed mirror"
    );
}
