//! The adversarial chaos engine, end to end: targeted fault waves and
//! flash-crowd streams interleaved against a live `OracleService` (inline
//! and worker-pool, single and sharded backends) while a fresh mirror
//! oracle checks every answer bit-for-bit — plus the engineered
//! portal-severing geometry that *guarantees* the `BoundaryIndex` global
//! fallback fires and stays exact.

use ftspan::{sample_fault_set, FaultModel, FaultSet, SpannerParams};
use ftspan_graph::{generators, vid, Graph};
use ftspan_integration_tests::rng;
use ftspan_oracle::chaos::{
    betweenness_proxy_wave, correlated_regional_wave, high_degree_wave, portal_severing_wave,
    run_chaos, weakest_boundary_pair, zipf_queries, ChaosRound, ScenarioPlan,
};
use ftspan_oracle::{
    FaultOracle, OracleOptions, OracleService, Query, ServiceConfig, ShardPlan, ShardPlanOptions,
    ShardedOptions, ShardedOracle,
};

/// The engineered fallback geometry: a 60-cycle split into three
/// consecutive arcs of 20. The spanner of a long cycle is the cycle
/// itself, so the only cut edge between shards 0 and 1 is `(19, 20)` —
/// faulting its two portal endpoints makes every shard-0/shard-1 pair
/// locally disconnected in the stitched pair region while the graph stays
/// globally connected the long way around, through shard 2.
fn severed_ring() -> (Graph, ShardPlan) {
    let graph = generators::cycle(60);
    let shard_of: Vec<u32> = (0..60u32).map(|i| i / 20).collect();
    (graph, ShardPlan::from_shard_of(shard_of))
}

fn ring_queries(round: u64, faults: &FaultSet) -> Vec<Query> {
    [(10u32, 30u32), (5, 35), (15, 25), (12, 28), (18, 21)]
        .iter()
        .map(|&(u, v)| {
            if (u as u64 + round).is_multiple_of(2) {
                Query::path(vid(u as usize), vid(v as usize), faults.clone())
            } else {
                Query::distance(vid(u as usize), vid(v as usize), faults.clone())
            }
        })
        .collect()
}

/// Satellite regression, no service in the way: sever every portal
/// between two shards as a query-time fault set and pin the sharded
/// oracle bit-identical to a single oracle on the same graph, while the
/// sharded metrics prove the global-fallback path actually ran.
#[test]
fn severing_every_portal_forces_global_fallback() {
    let (graph, plan) = severed_ring();
    let params = SpannerParams::vertex(2, 2);
    let single = FaultOracle::build(graph.clone(), params, OracleOptions::default());
    let sharded = ShardedOracle::build_with_plan(graph, params, plan, ShardedOptions::default());

    let (a, b) = weakest_boundary_pair(&sharded).expect("adjacent shards");
    assert_eq!((a, b), (0, 1), "cheapest boundary on the ring");
    let wave = portal_severing_wave(&sharded, a, b);
    assert_eq!(
        wave.vertex_faults(),
        &[vid(19), vid(20)],
        "exactly the two portal endpoints of the single cut edge"
    );
    assert_eq!(
        sharded
            .boundary()
            .live_cut_edges_between(a, b, &wave, sharded.spanner()),
        0,
        "the severing wave kills every cut edge"
    );

    for (u, v) in [(10, 30), (5, 35), (15, 25), (12, 28), (18, 21)] {
        let (u, v) = (vid(u), vid(v));
        let got = sharded.distance(u, v, &wave);
        let want = single.distance(u, v, &wave);
        assert_eq!(
            got.map(f64::to_bits),
            want.map(f64::to_bits),
            "distance diverged for ({u:?}, {v:?}) under the severing set"
        );
        assert!(
            got.is_some(),
            "the ring stays globally connected through shard 2"
        );
        let got_path = sharded.path(u, v, &wave);
        let want_path = single.path(u, v, &wave);
        assert_eq!(got_path.is_some(), want_path.is_some());
        if let Some((d, path)) = got_path {
            assert_eq!(path.first(), Some(&u));
            assert_eq!(path.last(), Some(&v));
            let mut walked = 0.0;
            for hop in path.windows(2) {
                let e = sharded
                    .spanner()
                    .edge_between(hop[0], hop[1])
                    .unwrap_or_else(|| panic!("non-spanner hop in {path:?}"));
                walked += sharded.spanner().weight(e);
            }
            assert!((walked - d).abs() < 1e-9, "walk {walked} != distance {d}");
        }
    }

    let snap = sharded.metrics().snapshot();
    assert!(
        snap.global_fallbacks > 0,
        "severing every portal must force the global fallback: {snap:?}"
    );
}

/// The same severing set pushed through a worker-pool `OracleService`
/// whose backend routes: the harness pins every answer against a *single*
/// oracle mirror (the exactness contract makes the backends
/// interchangeable for queries), and the scenario report must show the
/// global-fallback path firing.
#[test]
fn portal_severing_through_the_service_forces_fallback() {
    let (graph, plan) = severed_ring();
    let params = SpannerParams::vertex(2, 2);
    let mut mirror = FaultOracle::build(graph.clone(), params, OracleOptions::default());
    let backend = ShardedOracle::build_with_plan(graph, params, plan, ShardedOptions::default());
    let severing = portal_severing_wave(&backend, 0, 1);
    let service = OracleService::new(backend, ServiceConfig::default().with_workers(2));

    let bursts: Vec<Vec<Query>> = (0..3).map(|r| ring_queries(r, &severing)).collect();
    let report = run_chaos(
        &service,
        &mut mirror,
        vec![ScenarioPlan::queries_only("portal-severing", bursts)],
    );

    let scenario = &report.scenarios[0];
    assert_eq!(scenario.rounds, 3);
    assert!(scenario.answered > 0, "{scenario:?}");
    assert!(
        scenario.global_fallbacks > 0,
        "cross-shard queries under the severing set must fall back: {scenario:?}"
    );
    assert!(scenario.fallback_rate() > 0.0);
    assert_eq!(scenario.shed, 0, "no admission pressure configured");
}

/// Inline service (no worker pool — submitters help-pump rounds), single
/// oracle backend: targeted high-degree and betweenness-proxy waves land
/// between Zipf flash-crowd bursts, interleaved with a pure flash-crowd
/// scenario, every answer mirrored.
#[test]
fn chaos_engine_inline_single_backend() {
    let mut r = rng(9001);
    let graph = generators::barabasi_albert(80, 3, &mut r);
    let params = SpannerParams::vertex(2, 2);
    let mut mirror = FaultOracle::build(graph.clone(), params, OracleOptions::default());
    let backend = FaultOracle::build(graph.clone(), params, OracleOptions::default());
    let service = OracleService::new(backend, ServiceConfig::default());
    let empty = FaultSet::empty(FaultModel::Vertex);

    let query_faults = {
        let mut r = rng(9003);
        sample_fault_set(&graph, FaultModel::Vertex, 2, &[], &mut r)
    };
    let plans = vec![
        ScenarioPlan {
            name: "targeted-high-degree".into(),
            rounds: (0..3)
                .map(|i| ChaosRound {
                    queries: zipf_queries(&graph, 25, 1.2, &empty, 9100 + i),
                    wave: (i == 1).then(|| high_degree_wave(&graph, 2)),
                })
                .collect(),
        },
        ScenarioPlan {
            name: "targeted-betweenness".into(),
            rounds: (0..2)
                .map(|i| ChaosRound {
                    queries: zipf_queries(&graph, 20, 1.1, &query_faults, 9200 + i),
                    wave: (i == 0).then(|| betweenness_proxy_wave(&graph, 2, 12, 9250)),
                })
                .collect(),
        },
        ScenarioPlan::queries_only(
            "flash-crowd",
            (0..3)
                .map(|i| zipf_queries(&graph, 40, 1.4, &empty, 9300 + i))
                .collect(),
        ),
    ];
    let report = run_chaos(&service, &mut mirror, plans);

    assert_eq!(report.total_waves(), 2);
    assert!(report.total_answered() > 0);
    for scenario in &report.scenarios {
        assert!(scenario.answered > 0, "{scenario:?}");
        assert!(scenario.max_recovery >= scenario.mean_recovery());
    }

    let metrics = service.metrics();
    assert_eq!(metrics.waves, 2);
    assert!(
        metrics.wave_recovery_micros > 0,
        "wave recovery must be measured: {metrics:?}"
    );
    assert!(metrics.last_wave_recovery_micros <= metrics.wave_recovery_micros);
    assert_eq!(metrics.shed, 0);
}

/// Worker-pool service over a routed (sharded) backend with a sharded
/// mirror twin: a correlated regional wave, a random control wave, and a
/// flash-crowd stream interleave; repaired spanners must stay in lockstep
/// and the recovery envelope must be recorded.
#[test]
fn chaos_engine_worker_pool_sharded_backend() {
    let build = |seed: u64| {
        let mut r = rng(seed);
        let graph = generators::connected_gnp(90, 0.08, &mut r);
        let options = ShardedOptions {
            plan: ShardPlanOptions {
                shards: 4,
                ..ShardPlanOptions::default()
            },
            ..ShardedOptions::default()
        };
        ShardedOracle::build(graph, SpannerParams::vertex(2, 2), options)
    };
    let mut mirror = build(9401);
    let backend = build(9401);
    let graph = mirror.graph().clone();
    let empty = FaultSet::empty(FaultModel::Vertex);

    // Waves are generated from the mirror (identical plan by construction)
    // before the backend moves into the service.
    let shard = (0..mirror.shard_count() as u32)
        .max_by_key(|&s| mirror.plan().core(s as usize).len())
        .expect("at least one shard");
    let regional = correlated_regional_wave(&mirror, shard, 2, 9410);
    let random_control = {
        let mut r = rng(9420);
        sample_fault_set(&graph, FaultModel::Vertex, 2, &[], &mut r)
    };

    let service = OracleService::new(backend, ServiceConfig::default().with_workers(2));
    let plans = vec![
        ScenarioPlan {
            name: "correlated-regional".into(),
            rounds: (0..3)
                .map(|i| ChaosRound {
                    queries: zipf_queries(&graph, 25, 1.2, &empty, 9500 + i),
                    wave: (i == 1).then(|| regional.clone()),
                })
                .collect(),
        },
        ScenarioPlan {
            name: "random-control".into(),
            rounds: (0..2)
                .map(|i| ChaosRound {
                    queries: zipf_queries(&graph, 20, 1.1, &empty, 9600 + i),
                    wave: (i == 0).then(|| random_control.clone()),
                })
                .collect(),
        },
        ScenarioPlan::queries_only(
            "flash-crowd",
            (0..2)
                .map(|i| zipf_queries(&graph, 40, 1.4, &empty, 9700 + i))
                .collect(),
        ),
    ];
    let report = run_chaos(&service, &mut mirror, plans);

    assert_eq!(report.total_waves(), 2);
    assert!(report.total_answered() > 0);
    let regional_report = &report.scenarios[0];
    assert_eq!(regional_report.waves, 1);
    assert!(regional_report.recovery > std::time::Duration::ZERO);

    let metrics = service.metrics();
    assert_eq!(metrics.waves, 2);
    assert!(metrics.wave_recovery_micros > 0);
    assert!(
        metrics.coalesced > 0,
        "Zipf flash crowds must coalesce duplicates: {metrics:?}"
    );
}
