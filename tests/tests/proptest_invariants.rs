//! Property-based tests of the core invariants, on randomly generated graphs
//! and parameters.

use ftspan::lbc::{decide_vertex_lbc, is_length_bounded_cut, LbcDecision};
use ftspan::verify::{verify_spanner, VerificationMode};
use ftspan::{poly_greedy_spanner, FaultSet, SpannerParams};
use ftspan_graph::bfs::{bfs_hop_distances, shortest_hop_path_within};
use ftspan_graph::dijkstra::dijkstra_distances;
use ftspan_graph::girth::girth;
use ftspan_graph::{generators, vid, FaultView, Graph, GraphView, VertexId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a connected random graph described by (n, edge probability, seed).
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (4usize..24, 0.15f64..0.6, 0u64..1_000).prop_map(|(n, p, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::connected_gnp(n, p, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The modified greedy output is always a subgraph, never denser than the
    /// input, and satisfies the spanner property with no faults applied.
    #[test]
    fn poly_greedy_basic_invariants(graph in graph_strategy(), k in 2u32..4, f in 0u32..3) {
        let params = SpannerParams::vertex(k, f);
        let result = poly_greedy_spanner(&graph, params);
        prop_assert!(result.spanner.is_edge_subgraph_of(&graph));
        prop_assert!(result.spanner.edge_count() <= graph.edge_count());
        let report = verify_spanner(
            &graph,
            &result.spanner,
            SpannerParams::vertex(k, 0),
            VerificationMode::Exhaustive,
        );
        prop_assert!(report.is_valid());
    }

    /// Exhaustive fault-tolerance for f = 1 (kept small so the exhaustive
    /// verifier stays fast inside proptest).
    #[test]
    fn poly_greedy_is_fault_tolerant(graph in graph_strategy(), k in 2u32..3) {
        let params = SpannerParams::vertex(k, 1);
        let result = poly_greedy_spanner(&graph, params);
        let report = verify_spanner(&graph, &result.spanner, params, VerificationMode::Exhaustive);
        prop_assert!(report.is_valid(), "violations: {:?}", report.violations.len());
    }

    /// A YES answer from the LBC approximation always comes with a certificate
    /// that really is a length-bounded cut.
    #[test]
    fn lbc_yes_certificates_are_real_cuts(
        graph in graph_strategy(),
        t in 2u32..6,
        alpha in 1u32..4,
    ) {
        let u = vid(0);
        let v = vid(graph.vertex_count() - 1);
        let (decision, stats) = decide_vertex_lbc(&graph, u, v, t, alpha);
        prop_assert!(stats.bfs_runs <= alpha as usize + 1);
        if let LbcDecision::Yes(cut) = decision {
            prop_assert!(cut.len() <= (alpha * (t.saturating_sub(1))) as usize);
            prop_assert!(is_length_bounded_cut(&graph, &cut, u, v, t));
        }
    }

    /// BFS hop distances and Dijkstra agree on unit-weighted graphs, with or
    /// without faults applied.
    #[test]
    fn bfs_and_dijkstra_agree_on_unit_weights(graph in graph_strategy(), blocked in 0usize..4) {
        let mut view = FaultView::new(&graph);
        for i in 0..blocked.min(graph.vertex_count().saturating_sub(2)) {
            view.block_vertex(VertexId::new(i + 1));
        }
        let source = vid(0);
        let bfs = bfs_hop_distances(&view, source);
        let dij = dijkstra_distances(&view, source);
        for i in 0..graph.vertex_count() {
            match bfs[i] {
                Some(d) => prop_assert!((dij[i] - f64::from(d)).abs() < 1e-9),
                None => prop_assert!(dij[i].is_infinite()),
            }
        }
    }

    /// Hop-bounded search never returns a path longer than its budget, and
    /// agrees with plain BFS about reachability within the budget.
    #[test]
    fn hop_bounded_paths_respect_their_budget(graph in graph_strategy(), budget in 1u32..6) {
        let u = vid(0);
        let v = vid(graph.vertex_count() / 2);
        let dist = bfs_hop_distances(&graph, u)[v.index()];
        match shortest_hop_path_within(&graph, u, v, budget) {
            Some(path) => {
                prop_assert!(path.hop_count() as u32 <= budget);
                prop_assert_eq!(Some(path.hop_count() as u32), dist);
            }
            None => prop_assert!(dist.map_or(true, |d| d > budget)),
        }
    }

    /// Applying and clearing fault sets round-trips the view to the full graph.
    #[test]
    fn fault_view_round_trip(graph in graph_strategy(), faults in 0usize..5) {
        let victims: Vec<VertexId> = (0..faults.min(graph.vertex_count()))
            .map(VertexId::new)
            .collect();
        let set = FaultSet::vertices(victims.clone());
        let mut view = set.apply(&graph);
        prop_assert_eq!(view.live_vertex_count(), graph.vertex_count() - victims.len());
        view.clear();
        prop_assert_eq!(view.live_vertex_count(), graph.vertex_count());
        for v in graph.vertices() {
            prop_assert_eq!(view.neighbors(v).count(), graph.degree(v));
        }
    }

    /// The non-fault-tolerant greedy spanner of an unweighted graph has girth
    /// greater than 2k — the structural fact behind every size bound used in
    /// the paper.
    #[test]
    fn classic_greedy_girth_exceeds_2k(graph in graph_strategy(), k in 2u32..4) {
        let result = ftspan::nonft::greedy_spanner(&graph, k);
        if let Some(g) = girth(&result.spanner) {
            prop_assert!(g > 2 * k, "girth {g} with k {k}");
        }
    }
}
