//! Property-based tests of the core invariants, on randomly generated graphs
//! and parameters.

use ftspan::lbc::{decide_vertex_lbc, is_length_bounded_cut, LbcDecision};
use ftspan::verify::{verify_spanner, VerificationMode};
use ftspan::{poly_greedy_spanner, sample_fault_set, FaultModel, FaultSet, SpannerParams};
use ftspan_graph::bfs::{bfs_hop_distances, shortest_hop_path_within};
use ftspan_graph::dijkstra::{dijkstra_distances, weighted_distance};
use ftspan_graph::girth::girth;
use ftspan_graph::{generators, vid, FaultView, Graph, GraphView, VertexId};
use ftspan_oracle::{
    BoundaryIndex, FaultOracle, OracleOptions, ShardPlan, ShardPlanOptions, ShardedOptions,
    ShardedOracle,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy: a connected random graph described by (n, edge probability, seed).
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (4usize..24, 0.15f64..0.6, 0u64..1_000).prop_map(|(n, p, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::connected_gnp(n, p, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The modified greedy output is always a subgraph, never denser than the
    /// input, and satisfies the spanner property with no faults applied.
    #[test]
    fn poly_greedy_basic_invariants(graph in graph_strategy(), k in 2u32..4, f in 0u32..3) {
        let params = SpannerParams::vertex(k, f);
        let result = poly_greedy_spanner(&graph, params);
        prop_assert!(result.spanner.is_edge_subgraph_of(&graph));
        prop_assert!(result.spanner.edge_count() <= graph.edge_count());
        let report = verify_spanner(
            &graph,
            &result.spanner,
            SpannerParams::vertex(k, 0),
            VerificationMode::Exhaustive,
        );
        prop_assert!(report.is_valid());
    }

    /// Exhaustive fault-tolerance for f = 1 (kept small so the exhaustive
    /// verifier stays fast inside proptest).
    #[test]
    fn poly_greedy_is_fault_tolerant(graph in graph_strategy(), k in 2u32..3) {
        let params = SpannerParams::vertex(k, 1);
        let result = poly_greedy_spanner(&graph, params);
        let report = verify_spanner(&graph, &result.spanner, params, VerificationMode::Exhaustive);
        prop_assert!(report.is_valid(), "violations: {:?}", report.violations.len());
    }

    /// A YES answer from the LBC approximation always comes with a certificate
    /// that really is a length-bounded cut.
    #[test]
    fn lbc_yes_certificates_are_real_cuts(
        graph in graph_strategy(),
        t in 2u32..6,
        alpha in 1u32..4,
    ) {
        let u = vid(0);
        let v = vid(graph.vertex_count() - 1);
        let (decision, stats) = decide_vertex_lbc(&graph, u, v, t, alpha);
        prop_assert!(stats.bfs_runs <= alpha as usize + 1);
        if let LbcDecision::Yes(cut) = decision {
            prop_assert!(cut.len() <= (alpha * (t.saturating_sub(1))) as usize);
            prop_assert!(is_length_bounded_cut(&graph, &cut, u, v, t));
        }
    }

    /// BFS hop distances and Dijkstra agree on unit-weighted graphs, with or
    /// without faults applied.
    #[test]
    fn bfs_and_dijkstra_agree_on_unit_weights(graph in graph_strategy(), blocked in 0usize..4) {
        let mut view = FaultView::new(&graph);
        for i in 0..blocked.min(graph.vertex_count().saturating_sub(2)) {
            view.block_vertex(VertexId::new(i + 1));
        }
        let source = vid(0);
        let bfs = bfs_hop_distances(&view, source);
        let dij = dijkstra_distances(&view, source);
        for i in 0..graph.vertex_count() {
            match bfs[i] {
                Some(d) => prop_assert!((dij[i] - f64::from(d)).abs() < 1e-9),
                None => prop_assert!(dij[i].is_infinite()),
            }
        }
    }

    /// Hop-bounded search never returns a path longer than its budget, and
    /// agrees with plain BFS about reachability within the budget.
    #[test]
    fn hop_bounded_paths_respect_their_budget(graph in graph_strategy(), budget in 1u32..6) {
        let u = vid(0);
        let v = vid(graph.vertex_count() / 2);
        let dist = bfs_hop_distances(&graph, u)[v.index()];
        match shortest_hop_path_within(&graph, u, v, budget) {
            Some(path) => {
                prop_assert!(path.hop_count() as u32 <= budget);
                prop_assert_eq!(Some(path.hop_count() as u32), dist);
            }
            None => prop_assert!(dist.is_none_or(|d| d > budget)),
        }
    }

    /// Applying and clearing fault sets round-trips the view to the full graph.
    #[test]
    fn fault_view_round_trip(graph in graph_strategy(), faults in 0usize..5) {
        let victims: Vec<VertexId> = (0..faults.min(graph.vertex_count()))
            .map(VertexId::new)
            .collect();
        let set = FaultSet::vertices(victims.clone());
        let mut view = set.apply(&graph);
        prop_assert_eq!(view.live_vertex_count(), graph.vertex_count() - victims.len());
        view.clear();
        prop_assert_eq!(view.live_vertex_count(), graph.vertex_count());
        for v in graph.vertices() {
            prop_assert_eq!(view.neighbors(v).count(), graph.degree(v));
        }
    }

    /// The non-fault-tolerant greedy spanner of an unweighted graph has girth
    /// greater than 2k — the structural fact behind every size bound used in
    /// the paper.
    #[test]
    fn classic_greedy_girth_exceeds_2k(graph in graph_strategy(), k in 2u32..4) {
        let result = ftspan::nonft::greedy_spanner(&graph, k);
        if let Some(g) = girth(&result.spanner) {
            prop_assert!(g > 2 * k, "girth {g} with k {k}");
        }
    }

    /// Shard assignment is a partition of the vertex set — every vertex in
    /// exactly one shard — and deterministic under a fixed seed.
    #[test]
    fn shard_plan_is_a_deterministic_partition(
        graph in graph_strategy(),
        shards in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let options = ShardPlanOptions { shards, seed, ..ShardPlanOptions::default() };
        let plan = ShardPlan::build(&graph, &options);
        prop_assert_eq!(plan.vertex_count(), graph.vertex_count());
        prop_assert!(plan.shard_count() >= 1 && plan.shard_count() <= shards);
        // Partition: every vertex appears in exactly one core, and cores
        // agree with the per-vertex assignment.
        let mut seen = vec![0usize; graph.vertex_count()];
        for s in 0..plan.shard_count() {
            for &v in plan.core(s) {
                seen[v.index()] += 1;
                prop_assert_eq!(plan.shard_of(v) as usize, s);
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "vertex in {seen:?} cores");
        // Deterministic: an independent rebuild with the same seed agrees.
        prop_assert_eq!(plan, ShardPlan::build(&graph, &options));
    }

    /// Every spanner edge whose endpoints lie in different shards appears in
    /// the boundary index, and the index contains nothing else.
    #[test]
    fn every_cut_edge_appears_in_the_boundary_index(
        graph in graph_strategy(),
        shards in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let params = SpannerParams::vertex(2, 1);
        let spanner = poly_greedy_spanner(&graph, params).spanner;
        let plan = ShardPlan::build(
            &graph,
            &ShardPlanOptions { shards, seed, ..ShardPlanOptions::default() },
        );
        let index = BoundaryIndex::build(&spanner, &plan);
        let mut expected = 0usize;
        for (id, edge) in spanner.edges() {
            let (u, v) = edge.endpoints();
            if plan.shard_of(u) == plan.shard_of(v) {
                continue;
            }
            expected += 1;
            prop_assert!(
                index.cut_edges().iter().any(|c| c.edge == id),
                "cut edge {id} ({u}, {v}) missing from the boundary index"
            );
            prop_assert!(index.is_portal(u) && index.is_portal(v));
            let (a, b) = (plan.shard_of(u), plan.shard_of(v));
            prop_assert!(index.cut_edges_between(a, b).any(|c| c.edge == id));
        }
        // No extras: the index holds exactly the crossing edges.
        prop_assert_eq!(index.cut_edges().len(), expected);
    }

    /// Stitched cross-shard answers respect the `(2k − 1)` stretch bound
    /// against fresh Dijkstra on the faulted *base* graph — sharding never
    /// weakens the spanner guarantee the single oracle provides.
    #[test]
    fn stitched_cross_shard_paths_respect_the_stretch_bound(
        graph in graph_strategy(),
        f in 0u32..3,
        seed in 0u64..500,
    ) {
        let params = SpannerParams::vertex(2, f);
        let n = graph.vertex_count();
        let oracle = ShardedOracle::build(
            graph,
            params,
            ShardedOptions {
                plan: ShardPlanOptions { shards: 3, seed, ..ShardPlanOptions::default() },
                ..ShardedOptions::default()
            },
        );
        let stretch = oracle.stretch_bound();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..4 {
            let u = vid(rng.gen_range(0..n));
            let v = vid(rng.gen_range(0..n));
            if u == v || oracle.plan().shard_of(u) == oracle.plan().shard_of(v) {
                continue;
            }
            // |F| <= f, never faulting the terminals (Definition 1).
            let faults = sample_fault_set(
                oracle.graph(),
                FaultModel::Vertex,
                f as usize,
                &[u, v],
                &mut rng,
            );
            let answer = oracle.path(u, v, &faults);
            let graph_view = faults.apply(oracle.graph());
            if let Some(d_g) = weighted_distance(&graph_view, u, v) {
                let (d_h, path) = answer.expect("surviving pairs stay connected");
                prop_assert!(
                    d_h <= stretch * d_g + 1e-9,
                    "stitched stretch violated: {} > {} * {}", d_h, stretch, d_g
                );
                // The stitched path is a genuine walk in the global spanner.
                prop_assert_eq!(path.first(), Some(&u));
                prop_assert_eq!(path.last(), Some(&v));
                for pair in path.windows(2) {
                    prop_assert!(
                        oracle.spanner().edge_between(pair[0], pair[1]).is_some()
                    );
                }
            }
        }
    }

    /// Every `FaultOracle` answer equals Dijkstra on `H ∖ F` and respects
    /// the `(2k − 1)` stretch bound against `G ∖ F` — the serving layer
    /// never distorts the spanner guarantee.
    #[test]
    fn oracle_answers_match_dijkstra_and_stretch_bound(
        graph in graph_strategy(),
        f in 0u32..3,
        seed in 0u64..500,
    ) {
        let params = SpannerParams::vertex(2, f);
        let n = graph.vertex_count();
        let oracle = FaultOracle::build(graph, params, OracleOptions::default());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..4 {
            let u = vid(rng.gen_range(0..n));
            let v = vid(rng.gen_range(0..n));
            if u == v {
                continue;
            }
            // |F| ≤ f, never faulting the terminals (Definition 1).
            let faults = sample_fault_set(
                oracle.graph(),
                FaultModel::Vertex,
                f as usize,
                &[u, v],
                &mut rng,
            );
            let answer = oracle.distance(u, v, &faults);
            let spanner_view = faults.apply(oracle.spanner());
            prop_assert_eq!(answer, weighted_distance(&spanner_view, u, v));
            let graph_view = faults.apply(oracle.graph());
            if let Some(d_g) = weighted_distance(&graph_view, u, v) {
                let d_h = answer.expect("spanner must keep surviving pairs connected");
                prop_assert!(
                    d_h <= f64::from(params.stretch()) * d_g + 1e-9,
                    "stretch violated: {} > {} * {}", d_h, params.stretch(), d_g
                );
            }
        }
    }
}

/// Strategy: an `IdRemap` member set over a large universe, biased toward the
/// shapes the scale tier produces — sparse scatters, high-id clusters near
/// the top of the universe, and page-straddling runs — with duplicates and
/// out-of-range ids mixed in (both must be tolerated, not round-tripped).
fn remap_members_strategy() -> impl Strategy<Value = (usize, Vec<ftspan_graph::VertexId>)> {
    (1usize..=22, 0u64..1_000_000).prop_map(|(log_universe, seed)| {
        let universe = 1usize << log_universe;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut members = Vec::new();
        for _ in 0..rng.gen_range(1..120) {
            let run = rng.gen_range(1usize..64);
            match rng.gen_range(0u8..3) {
                // Sparse scatter anywhere in (or slightly past) the universe.
                0 => members.push(vid(rng.gen_range(0..universe + universe / 4 + 1))),
                // High-id cluster hugging the top of the universe.
                1 => {
                    let base = universe.saturating_sub(1 + rng.gen_range(0usize..4096));
                    members.extend((0..run.min(8)).map(|i| vid(base.saturating_sub(i * 3))));
                }
                // A run straddling a 64-id page boundary.
                _ => {
                    let page_edge = rng.gen_range(0..universe.div_ceil(64).max(1)) * 64;
                    let start = page_edge.saturating_sub(run / 2);
                    members.extend((start..start + run).map(vid));
                }
            }
        }
        (universe, members)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The paged `IdRemap` behaves exactly like the obvious dense map on
    /// every member shape the shards produce: first occurrence wins, both
    /// directions round-trip, non-members (and out-of-range ids) map to
    /// `None`, and memory stays proportional to touched pages, not to the
    /// universe.
    #[test]
    fn id_remap_matches_dense_reference((universe, members) in remap_members_strategy()) {
        use ftspan_graph::IdRemap;
        let remap = IdRemap::from_members(universe, &members);

        // Dense reference: first in-range occurrence of each id, in order.
        let mut dense: Vec<Option<usize>> = vec![None; universe];
        let mut expected_members = Vec::new();
        for &v in &members {
            if v.index() < universe && dense[v.index()].is_none() {
                dense[v.index()] = Some(expected_members.len());
                expected_members.push(v);
            }
        }

        prop_assert_eq!(remap.universe_size(), universe);
        prop_assert_eq!(remap.local_count(), expected_members.len());
        prop_assert_eq!(remap.members(), expected_members.as_slice());
        for (local, &global) in expected_members.iter().enumerate() {
            prop_assert_eq!(remap.to_local(global), Some(vid(local)));
            prop_assert_eq!(remap.to_global(vid(local)), global);
        }
        // Probe non-members around every member (page neighbours are the
        // interesting misses) plus the out-of-range frontier.
        for &v in &expected_members {
            for probe in [v.index().wrapping_sub(1), v.index() + 1, v.index() ^ 63] {
                if probe < universe {
                    prop_assert_eq!(remap.to_local(vid(probe)), dense[probe].map(vid));
                }
            }
        }
        prop_assert_eq!(remap.to_local(vid(universe)), None);
        prop_assert_eq!(remap.to_local(vid(universe + 63)), None);

        // Paged storage: at most one 64-slot page per member (plus the page
        // directory and the member list, whose capacity is reserved from the
        // raw input length, duplicates included) — never the dense universe
        // map.
        let pages_touched: std::collections::HashSet<usize> =
            expected_members.iter().map(|v| v.index() / 64).collect();
        let slot_bytes = pages_touched.len() * 64 * 4;
        let directory_bytes = universe.div_ceil(64) * 4;
        let member_bytes = members.len() * 4;
        prop_assert!(
            remap.memory_bytes() <= 2 * (slot_bytes + directory_bytes + member_bytes) + 256,
            "paged remap used {} bytes for {} members over a {} universe",
            remap.memory_bytes(), expected_members.len(), universe
        );
    }
}
