//! The service differential suite: every request answered through the
//! [`OracleService`] front-end — with coalescing **and** admission control
//! enabled, across interleaved fault waves — must be **bit-identical** to a
//! direct `answer_batch` call on an identically-built backend, for both the
//! single and the sharded oracle. The front-end schedules, merges, bounds,
//! and sheds; it must never change an answer.
//!
//! Unit-weight families make bit-identity meaningful: every correct
//! shortest-path computation produces the same exact `f64`, no matter which
//! cached tree or admission round served it. A weighted family runs with an
//! ulp-scale tolerance (tied shortest paths can sum the same real length to
//! floats one ulp apart). Shortest paths need not be unique, so path
//! answers are compared as walks: same endpoints, every hop a live spanner
//! edge, total weight equal to the reported distance.

use ftspan::{sample_fault_set, FaultModel, FaultSet, SpannerParams};
use ftspan_graph::{generators, vid, Graph};
use ftspan_integration_tests::rng;
use ftspan_oracle::{
    Answer, FaultOracle, OracleOptions, OracleService, Query, RebuildPolicy, ServiceConfig,
    ShardPlan, ShardPlanOptions, ShardedOptions, ShardedOracle, SpannerOracle,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Churn waves interleaved with traffic (the issue's floor is 20).
const WAVES: usize = 21;
/// Distinct queries drawn per burst; the burst samples them with
/// repetition, so coalescing always has duplicates to merge.
const DISTINCT_PER_BURST: usize = 40;
const BURST: usize = 110;

fn burst(graph: &Graph, f: usize, r: &mut StdRng) -> Vec<Query> {
    let n = graph.vertex_count();
    let fault_pool: Vec<FaultSet> = (0..4)
        .map(|_| sample_fault_set(graph, FaultModel::Vertex, f, &[], r))
        .collect();
    let distinct: Vec<Query> = (0..DISTINCT_PER_BURST)
        .map(|i| {
            let u = vid(r.gen_range(0..n));
            let mut v = vid(r.gen_range(0..n));
            while v == u {
                v = vid(r.gen_range(0..n));
            }
            let faults = fault_pool[i % fault_pool.len()].clone();
            if i % 3 == 0 {
                Query::path(u, v, faults)
            } else {
                Query::distance(u, v, faults)
            }
        })
        .collect();
    (0..BURST)
        .map(|_| distinct[r.gen_range(0..distinct.len())].clone())
        .collect()
}

/// Compares one service answer against the direct answer for the same
/// query: distances within `tolerance` (0.0 = bit-identical), path
/// presence identical, and any path a genuine spanner walk of the reported
/// length.
fn compare(
    label: &str,
    spanner: &Graph,
    query: &Query,
    want: &Answer,
    got: &Answer,
    tolerance: f64,
) {
    match (want.distance(), got.distance()) {
        (None, None) => {}
        (Some(a), Some(b)) if (a - b).abs() <= tolerance => {}
        other => panic!("{label}: distance diverged for {query:?}: {other:?}"),
    }
    assert_eq!(
        want.path().is_some(),
        got.path().is_some(),
        "{label}: path presence diverged for {query:?}"
    );
    if let Some(path) = got.path() {
        assert_eq!(path.first(), Some(&query.u), "{label}");
        assert_eq!(path.last(), Some(&query.v), "{label}");
        let mut walked = 0.0;
        for pair in path.windows(2) {
            let e = spanner
                .edge_between(pair[0], pair[1])
                .unwrap_or_else(|| panic!("{label}: non-spanner hop in {path:?}"));
            walked += spanner.weight(e);
            assert!(!query.faults.contains_vertex(pair[0]), "{label}");
        }
        let d = got.distance().expect("path answers carry a distance");
        assert!(
            (walked - d).abs() < 1e-9,
            "{label}: path length {walked} != distance {d}"
        );
    }
}

/// The generic differential runner: `direct` and the service's backend are
/// built identically; every round interleaves a pre-wave burst, a wave, and
/// a post-wave burst **in one drain**, so the wave barrier's ordering is
/// exercised, not just per-round equivalence.
fn service_vs_direct<O: SpannerOracle + 'static>(
    label: &str,
    mut direct: O,
    backend: O,
    config: ServiceConfig,
    f: usize,
    seed: u64,
    tolerance: f64,
) {
    let churn = config.churn.clone();
    let service = OracleService::new(backend, config);
    let mut r = rng(seed);

    for round in 0..WAVES {
        // Walk validation needs the spanner of the epoch each burst was
        // answered against; the wave below replaces it.
        let pre_spanner = direct.spanner().clone();
        let pre = burst(direct.graph(), f, &mut r);
        let wave = sample_fault_set(direct.graph(), FaultModel::Vertex, 2, &[], &mut r);
        let post_source = {
            // Post-wave traffic is generated against the post-wave graph;
            // apply the wave to the direct backend first.
            let want_pre = direct.answer_batch(&pre);
            let report = direct.apply_wave(&wave, &churn);
            (want_pre, report)
        };
        let post = burst(direct.graph(), f, &mut r);
        let want_post = direct.answer_batch(&post);
        let (want_pre, direct_report) = post_source;

        // The service sees the same sequence through one queue: pre-burst,
        // wave barrier, post-burst, drained together.
        let pre_tickets: Vec<_> = pre.iter().cloned().map(|q| service.submit(q)).collect();
        let wave_ticket = service.submit_wave(wave);
        let post_tickets: Vec<_> = post.iter().cloned().map(|q| service.submit(q)).collect();
        let outcome = service.drain();
        assert_eq!(outcome.answered, pre.len() + post.len(), "{label} {round}");
        assert_eq!(outcome.waves, 1);

        let service_report = service.wave_report(wave_ticket).expect("wave applied");
        assert_eq!(
            service_report.outcome.edges_added, direct_report.outcome.edges_added,
            "{label} round {round}: wave repair diverged"
        );
        assert_eq!(
            service_report.outcome.broken_pairs, direct_report.outcome.broken_pairs,
            "{label} round {round}"
        );
        assert_eq!(
            service_report.rebuilt_lanes, direct_report.rebuilt_lanes,
            "{label} round {round}"
        );
        assert_eq!(service.oracle().epoch(), direct.epoch(), "{label} {round}");

        let post_spanner = direct.spanner();
        for (queries, tickets, want, spanner) in [
            (&pre, &pre_tickets, &want_pre, &pre_spanner),
            (&post, &post_tickets, &want_post, post_spanner),
        ] {
            for ((query, ticket), want) in queries.iter().zip(tickets.iter()).zip(want) {
                let got = service.answer(*ticket).expect("drained ticket answered");
                compare(
                    &format!("{label} round {round}"),
                    spanner,
                    query,
                    want,
                    &got,
                    tolerance,
                );
            }
        }
        service.recycle();
    }

    let metrics = service.metrics();
    assert!(
        metrics.coalesced > 0,
        "{label}: repeated queries must have been coalesced (got {metrics:?})"
    );
    assert_eq!(metrics.shed, 0, "{label}: no cooldown, nothing may shed");
    assert_eq!(
        metrics.submitted,
        (WAVES * 2 * BURST) as u64,
        "{label}: every burst accounted for"
    );
    assert!(
        metrics.rounds > (WAVES * 2) as u64,
        "{label}: admission caps must split bursts into multiple rounds"
    );
}

/// Worker counts every differential scenario runs at: inline (0) plus the
/// {1, 2, 8} concurrent-pool counts the CI matrix pins.
const WORKER_COUNTS: [usize; 4] = [0, 1, 2, 8];

#[test]
fn single_oracle_service_is_bit_identical_across_waves() {
    for workers in WORKER_COUNTS {
        let mut r = rng(9201);
        let graph = generators::connected_gnp(90, 0.08, &mut r);
        let params = SpannerParams::vertex(2, 2);
        let direct = FaultOracle::build(graph.clone(), params, OracleOptions::default());
        let backend = FaultOracle::build(graph, params, OracleOptions::default());
        let config = ServiceConfig::default()
            .with_max_in_flight(32)
            .with_lane_in_flight(32)
            .with_workers(workers);
        let label = format!("single-gnp90-w{workers}");
        service_vs_direct(&label, direct, backend, config, 2, 1, 0.0);
    }
}

#[test]
fn sharded_oracle_service_is_bit_identical_across_waves() {
    for workers in WORKER_COUNTS {
        let mut r = rng(9202);
        let graph = generators::connected_gnp(90, 0.08, &mut r);
        let params = SpannerParams::vertex(2, 2);
        let options = ShardedOptions {
            plan: ShardPlanOptions {
                shards: 4,
                ..ShardPlanOptions::default()
            },
            ..ShardedOptions::default()
        };
        let direct = ShardedOracle::build(graph.clone(), params, options.clone());
        let backend = ShardedOracle::build(graph, params, options);
        assert!(backend.shard_count() > 1, "per-shard admission needs lanes");
        // Global *and* per-lane caps: per-shard admission control is on.
        let config = ServiceConfig::default()
            .with_max_in_flight(48)
            .with_lane_in_flight(8)
            .with_workers(workers);
        let label = format!("sharded-gnp90-w{workers}");
        service_vs_direct(&label, direct, backend, config, 2, 2, 0.0);
    }
}

#[test]
fn weighted_backend_agrees_within_tolerance() {
    for workers in WORKER_COUNTS {
        let mut r = rng(9203);
        let base = {
            let mut g = generators::random_geometric(70, 0.2, &mut r);
            generators::overlay_random_spanning_tree(&mut g, &mut r);
            generators::with_random_weights(&g, 1.0, 8.0, &mut r)
        };
        let params = SpannerParams::vertex(2, 1);
        let direct = FaultOracle::build(base.clone(), params, OracleOptions::default());
        let backend = FaultOracle::build(base, params, OracleOptions::default());
        let config = ServiceConfig::default()
            .with_max_in_flight(24)
            .with_workers(workers);
        let label = format!("weighted-geo70-w{workers}");
        service_vs_direct(&label, direct, backend, config, 1, 3, 1e-9);
    }
}

/// Per-shard shedding during a rebuild: a wave confined to one shard puts
/// only that shard's lane into cooldown; its traffic is shed for the
/// cooling rounds while the untouched shard keeps answering — and every
/// answer that *is* served stays identical to the direct backend's.
#[test]
fn rebuilt_shard_sheds_while_untouched_shards_serve_identically() {
    // Two cliques joined by a long path (the shape from the sharded churn
    // tests): damage inside clique A is farther than the halo radius from
    // clique B's region, so a wave there rebuilds only shard 0.
    let graph = {
        let size = 6usize;
        let path_len = 14usize;
        let n = 2 * size + path_len;
        let mut g = Graph::new(n);
        for c in 0..2 {
            for i in 0..size {
                for j in (i + 1)..size {
                    g.add_unit_edge(c * size + i, c * size + j);
                }
            }
        }
        let chain_start = 2 * size;
        let mut prev = 0usize;
        for p in 0..path_len {
            g.add_unit_edge(prev, chain_start + p);
            prev = chain_start + p;
        }
        g.add_unit_edge(prev, size);
        g
    };
    let n = graph.vertex_count();
    let shard_of: Vec<u32> = (0..n)
        .map(|i| u32::from(!(i < 6 || (12..19).contains(&i))))
        .collect();
    let plan = ShardPlan::from_shard_of(shard_of);
    let params = SpannerParams::vertex(2, 1);
    let mut direct = ShardedOracle::build_with_plan(
        graph.clone(),
        params,
        plan.clone(),
        ShardedOptions::default(),
    );
    let backend = ShardedOracle::build_with_plan(graph, params, plan, ShardedOptions::default());

    let config = ServiceConfig::default()
        .with_rebuild_cooldown(1)
        .with_rebuild_policy(RebuildPolicy::Shed);
    let churn = config.churn.clone();
    let service = OracleService::new(backend, config);

    // The wave hits deep inside clique A (shard 0).
    let wave = FaultSet::vertices([vid(2)]);
    let wave_ticket = service.submit_wave(wave.clone());
    let direct_report = SpannerOracle::apply_wave(&mut direct, &wave, &churn);
    assert_eq!(direct_report.rebuilt_lanes, vec![0]);

    // Traffic for both shards lands right behind the wave barrier: shard
    // 0 requests arrive while its region is mid-rebuild.
    let empty = FaultSet::empty(FaultModel::Vertex);
    let rebuilt: Vec<_> = [(1usize, 4usize), (3, 5), (13, 15)]
        .iter()
        .map(|&(u, v)| service.submit(Query::distance(vid(u), vid(v), empty.clone())))
        .collect();
    let untouched_queries: Vec<Query> = [(6usize, 9usize), (7, 10), (20, 23)]
        .iter()
        .map(|&(u, v)| Query::distance(vid(u), vid(v), empty.clone()))
        .collect();
    let untouched: Vec<_> = untouched_queries
        .iter()
        .cloned()
        .map(|q| service.submit(q))
        .collect();
    let want = direct.answer_batch(&untouched_queries);
    let outcome = service.drain();

    assert_eq!(service.wave_report(wave_ticket).unwrap().rebuilt_lanes, [0]);
    assert_eq!(outcome.shed, rebuilt.len(), "cooling shard 0 sheds");
    assert!(service.shed_by_lane()[0] >= rebuilt.len() as u64);
    assert_eq!(service.shed_by_lane()[1], 0, "untouched shard never sheds");
    for t in &rebuilt {
        assert!(service.answer(*t).is_none(), "shed tickets have no answer");
    }
    for ((query, ticket), want) in untouched_queries.iter().zip(&untouched).zip(&want) {
        let got = service.answer(*ticket).expect("untouched lane served");
        compare(
            "shed-demo",
            service.oracle().spanner(),
            query,
            want,
            &got,
            0.0,
        );
    }

    // The cooldown has expired; resubmitted shard-0 traffic is served and
    // matches the direct (post-wave) backend.
    let retry_query = Query::distance(vid(1), vid(4), empty);
    let retry = service.submit(retry_query.clone());
    service.drain();
    let got = service.answer(retry).expect("cooldown expired");
    let want = direct.answer(&retry_query);
    compare(
        "shed-retry",
        service.oracle().spanner(),
        &retry_query,
        &want,
        &got,
        0.0,
    );

    let metrics = service.metrics();
    assert_eq!(metrics.shed, rebuilt.len() as u64);
    assert_eq!(metrics.waves, 1);
}
