//! Integration tests for the `ftspan-oracle` serving engine: churn-driven
//! repair and the large-batch acceptance scenario.

use ftspan::verify::{verify_spanner, VerificationMode};
use ftspan::{poly_greedy_spanner, sample_fault_set, FaultModel, FaultSet, SpannerParams};
use ftspan_graph::dijkstra::{weighted_distance, DijkstraScratch};
use ftspan_graph::{generators, vid};
use ftspan_integration_tests::rng;
use ftspan_oracle::{
    ChurnConfig, FaultOracle, OracleOptions, Query, ShardPlanOptions, ShardedOptions, ShardedOracle,
};
use rand::Rng;

/// Twenty rounds of churn beyond the design tolerance: after every wave the
/// repaired spanner must again be a valid `f`-fault-tolerant spanner of the
/// surviving graph, and the oracle must keep answering.
#[test]
fn twenty_churn_rounds_repair_restores_validity() {
    let mut r = rng(501);
    let graph = generators::connected_gnp(60, 0.18, &mut r);
    let params = SpannerParams::vertex(2, 1);
    let mut oracle = FaultOracle::build(graph, params, OracleOptions::default());
    let config = ChurnConfig::default();

    for round in 0..20u64 {
        // Two permanent failures per round — twice the design tolerance.
        let wave = sample_fault_set(oracle.graph(), FaultModel::Vertex, 2, &[], &mut r);
        let outcome = oracle.apply_wave(&wave, &config);
        assert_eq!(outcome.wave, wave, "round {round}");

        // Repair must leave a valid f-VFT spanner of the damaged graph.
        let report = verify_spanner(
            oracle.graph(),
            oracle.spanner(),
            params,
            VerificationMode::Sampled {
                samples: 20,
                seed: round,
            },
        );
        assert!(
            report.is_valid(),
            "round {round}: {} violations, e.g. {:?}",
            report.violations.len(),
            report.violations.first()
        );
        assert!(
            oracle.spanner().is_edge_subgraph_of(oracle.graph()),
            "round {round}: repaired spanner must stay a subgraph"
        );

        // The oracle still serves live pairs.
        let live: Vec<_> = oracle
            .graph()
            .vertices()
            .filter(|&v| oracle.graph().degree(v) > 0)
            .take(2)
            .collect();
        if live.len() == 2 {
            let empty = FaultSet::empty(FaultModel::Vertex);
            let _ = oracle.distance(live[0], live[1], &empty);
        }
    }
    let snapshot = oracle.metrics().snapshot();
    assert_eq!(snapshot.waves_applied, 20);
    assert_eq!(oracle.epoch(), 20);
    // Waves may resample an already-failed vertex, so damage accumulates to
    // at most 2 per round.
    let damaged = oracle.damaged_vertices().len();
    assert!((20..=40).contains(&damaged), "damaged {damaged}");
}

/// Edge-fault churn: waves of permanent edge failures, same repair contract.
#[test]
fn edge_fault_churn_repairs_too() {
    let mut r = rng(502);
    let graph = generators::connected_gnp(50, 0.2, &mut r);
    let params = SpannerParams::edge(2, 1);
    let mut oracle = FaultOracle::build(graph, params, OracleOptions::default());
    let config = ChurnConfig::default();

    for round in 0..8u64 {
        let wave = sample_fault_set(oracle.graph(), FaultModel::Edge, 3, &[], &mut r);
        let _ = oracle.apply_wave(&wave, &config);
        let report = verify_spanner(
            oracle.graph(),
            oracle.spanner(),
            params,
            VerificationMode::Sampled {
                samples: 15,
                seed: round,
            },
        );
        assert!(
            report.is_valid(),
            "round {round}: {:?}",
            report.violations.first()
        );
    }
}

/// The acceptance scenario: a 10 000-query batch against a 1 000-node graph
/// under `f = 2` vertex faults. Every sampled answer must equal Dijkstra on
/// `H ∖ F` and respect `d_{H∖F} ≤ (2k − 1) · d_{G∖F}`.
#[test]
fn ten_thousand_query_batch_on_thousand_node_graph_respects_stretch() {
    let n = 1_000;
    let mut r = rng(503);
    let graph = generators::connected_gnp(n, 16.0 / (n as f64 - 1.0), &mut r);
    let params = SpannerParams::vertex(2, 2);
    let oracle = FaultOracle::build(graph, params, OracleOptions::default());
    assert!(
        oracle.spanner().edge_count() < oracle.graph().edge_count(),
        "the spanner should actually sparsify this graph"
    );

    // 10k mixed queries over a pool of f = 2 vertex fault sets and hot
    // sources (the traffic shape the cache is built for).
    let fault_pool: Vec<FaultSet> = (0..10)
        .map(|_| sample_fault_set(oracle.graph(), FaultModel::Vertex, 2, &[], &mut r))
        .collect();
    let hot_sources: Vec<usize> = (0..40).map(|_| r.gen_range(0..n)).collect();
    let queries: Vec<Query> = (0..10_000)
        .map(|i| {
            let u = vid(hot_sources[r.gen_range(0..hot_sources.len())]);
            let mut v = vid(r.gen_range(0..n));
            while v == u {
                v = vid(r.gen_range(0..n));
            }
            let faults = fault_pool[i % fault_pool.len()].clone();
            if i % 5 == 0 {
                Query::path(u, v, faults)
            } else {
                Query::distance(u, v, faults)
            }
        })
        .collect();

    let answers = oracle.answer_batch(&queries);
    assert_eq!(answers.len(), queries.len());

    // Sample answers across the batch and check them against the ground
    // truth: exact distance in H \ F (correctness) and the (2k − 1) bound
    // against exact distance in G \ F (the spanner guarantee).
    let stretch = oracle.stretch_bound();
    let mut scratch = DijkstraScratch::new();
    let mut audited = 0;
    for (query, answer) in queries.iter().zip(&answers).step_by(61) {
        let spanner_view = query.faults.apply(oracle.spanner());
        let h_tree = scratch.shortest_path_tree(&spanner_view, query.u);
        assert_eq!(
            answer.distance,
            h_tree.distance_to(query.v),
            "answer must equal Dijkstra on H \\ F for {query:?}"
        );
        let graph_view = query.faults.apply(oracle.graph());
        let g_tree = scratch.shortest_path_tree(&graph_view, query.u);
        match g_tree.distance_to(query.v) {
            Some(d_g) => {
                let d_h = answer
                    .distance
                    .expect("pair connected in G \\ F must be served by H \\ F");
                assert!(
                    d_h <= stretch * d_g + 1e-9,
                    "stretch violated for {query:?}: {d_h} > {stretch} * {d_g}"
                );
            }
            None => assert!(
                answer.distance.is_none(),
                "H \\ F cannot connect a pair G \\ F separates"
            ),
        }
        audited += 1;
    }
    assert!(audited >= 150, "audited only {audited} answers");

    // Path answers must be genuine walks in the surviving spanner.
    for (query, answer) in queries.iter().zip(&answers) {
        if let Some(path) = &answer.path {
            assert_eq!(path.first(), Some(&query.u));
            assert_eq!(path.last(), Some(&query.v));
            let mut walked = 0.0;
            for pair in path.windows(2) {
                let e = oracle
                    .spanner()
                    .edge_between(pair[0], pair[1])
                    .expect("path edges must exist in the spanner");
                walked += oracle.spanner().weight(e);
            }
            let d = answer.distance.expect("path answers carry a distance");
            assert!((walked - d).abs() < 1e-9);
        }
    }

    // The grouped batch over a small fault-set pool must hit the cache hard.
    let snapshot = oracle.metrics().snapshot();
    assert_eq!(snapshot.queries, 10_000);
    assert!(
        snapshot.hit_rate() > 0.7,
        "hit rate {:.2} too low for pooled traffic",
        snapshot.hit_rate()
    );
}

/// Runs `rounds` of sharded churn and audits the serving state after every
/// wave: the repaired spanner stays valid, sharded answers stay consistent
/// with the global oracle, and per-shard repair is never worse than what a
/// **post-wave global respan** would guarantee — a fresh modified-greedy
/// spanner of the damaged graph provides `(2k − 1)`-stretch over `G' ∖ F`,
/// so every sharded answer is held to that same bound, with connectivity
/// parity against the fresh respan.
fn sharded_churn_run(rounds: u64, n: usize, seed: u64) {
    let mut r = rng(seed);
    let graph = generators::connected_gnp(n, 14.0 / (n as f64 - 1.0), &mut r);
    let params = SpannerParams::vertex(2, 1);
    let mut oracle = ShardedOracle::build(
        graph,
        params,
        ShardedOptions {
            plan: ShardPlanOptions {
                shards: 3,
                ..ShardPlanOptions::default()
            },
            ..ShardedOptions::default()
        },
    );
    let config = ChurnConfig::default();
    let stretch = oracle.stretch_bound();

    for round in 0..rounds {
        let wave = sample_fault_set(oracle.graph(), FaultModel::Vertex, 2, &[], &mut r);
        let outcome = oracle.apply_wave(&wave, &config);
        assert_eq!(outcome.global.wave, wave, "round {round}");

        // The globally-repaired spanner the shards serve is valid for the
        // damaged graph.
        let report = verify_spanner(
            oracle.graph(),
            oracle.spanner(),
            params,
            VerificationMode::Sampled {
                samples: 15,
                seed: round,
            },
        );
        assert!(
            report.is_valid(),
            "round {round}: {:?}",
            report.violations.first()
        );

        // The benchmark per-shard repair is held to: a full respan of the
        // post-wave graph from scratch.
        let respan = poly_greedy_spanner(oracle.graph(), params).spanner;
        let empty = FaultSet::empty(FaultModel::Vertex);
        for _ in 0..6 {
            let u = vid(r.gen_range(0..n));
            let v = vid(r.gen_range(0..n));
            let sharded = oracle.distance(u, v, &empty);
            // Consistency: sharded serving equals the global oracle.
            assert_eq!(
                sharded,
                oracle.global().distance(u, v, &empty),
                "round {round}: sharded and global answers diverged"
            );
            let d_base = weighted_distance(oracle.graph(), u, v);
            let d_respan = weighted_distance(&respan, u, v);
            // Both spanners preserve connectivity of the damaged graph, so
            // reachability must agree with the fresh respan.
            assert_eq!(
                sharded.is_some(),
                d_respan.is_some(),
                "round {round}: connectivity parity with the global respan broke"
            );
            if let Some(d_g) = d_base {
                let d_h = sharded.expect("connected pairs stay served");
                // Never worse than the post-wave global respan's guarantee.
                assert!(
                    d_h <= stretch * d_g + 1e-9,
                    "round {round}: {d_h} > {stretch} * {d_g}"
                );
            }
        }
    }
    assert_eq!(oracle.metrics().snapshot().waves, rounds);
    assert_eq!(oracle.global().epoch(), rounds);
}

/// Twenty rounds of sharded churn (the headline satellite scenario).
#[test]
fn twenty_sharded_churn_rounds_stay_consistent_and_within_respan_bound() {
    sharded_churn_run(20, 60, 601);
}

/// Nightly-style long churn soak, enabled by `FTSPAN_LONG_TESTS=1` (wired to
/// the scheduled CI job): more rounds on a larger graph.
#[test]
fn long_sharded_churn_soak() {
    if std::env::var("FTSPAN_LONG_TESTS").map_or(true, |v| v != "1") {
        eprintln!("skipping long churn soak (set FTSPAN_LONG_TESTS=1 to run)");
        return;
    }
    sharded_churn_run(60, 140, 602);
}

/// The oracle's repair path is exercised deliberately: destroy part of the
/// spanner's redundancy by a targeted wave and confirm escalation still ends
/// in a valid state.
#[test]
fn targeted_wave_with_escalation_allowed_stays_valid() {
    let graph = generators::ring_of_cliques(6, 5);
    let params = SpannerParams::vertex(2, 1);
    let mut oracle = FaultOracle::build(graph, params, OracleOptions::default());
    // Fault one vertex of every other clique — structured damage near the
    // ring's small cuts.
    let wave = FaultSet::vertices([vid(0), vid(10), vid(20)]);
    let config = ChurnConfig {
        verify_samples: 25,
        ..ChurnConfig::default()
    };
    let _ = oracle.apply_wave(&wave, &config);
    let report = verify_spanner(
        oracle.graph(),
        oracle.spanner(),
        params,
        VerificationMode::Sampled {
            samples: 30,
            seed: 7,
        },
    );
    assert!(report.is_valid(), "{:?}", report.violations.first());
}
