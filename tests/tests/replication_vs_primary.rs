//! The replication differential suite: a replica bootstrapped from a
//! mid-churn snapshot and fed the primary's wave journal must be
//! **indistinguishable** from the primary — bit-identical `f64` distances,
//! identical witness paths (walk-validated against the replica's own
//! spanner), and a byte-identical re-captured snapshot — across ≥20
//! interleaved fault waves, on all three backends.
//!
//! The replica is deliberately allowed to *lag*: catch-up happens every
//! few waves, in batches, through [`WaveJournal::entries_since`] — the
//! same cursor protocol the wire subscription uses — so the suite also
//! pins the lag bookkeeping ([`Replica::lag`]) and the journal's
//! round-trip encoding.

use ftspan::{sample_fault_set, FaultModel, FaultSet, SpannerParams};
use ftspan_graph::{generators, vid};
use ftspan_integration_tests::rng;
use ftspan_oracle::{
    ChurnConfig, FaultOracle, HierarchicalOptions, HierarchicalOracle, JournalEntry, OracleOptions,
    OracleService, Query, Replica, ServiceConfig, ShardPlanOptions, ShardedOptions, ShardedOracle,
    Snapshot, Snapshottable, SpannerOracle, TicketState, WaveJournal,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Waves applied after the bootstrap snapshot (the issue floor is 20).
const WAVES: usize = 22;
const BURST: usize = 40;

fn burst(oracle: &impl SpannerOracle, r: &mut StdRng) -> Vec<Query> {
    let n = oracle.graph().vertex_count();
    (0..BURST)
        .map(|i| {
            let u = vid(r.gen_range(0..n));
            let mut v = vid(r.gen_range(0..n));
            while v == u {
                v = vid(r.gen_range(0..n));
            }
            let faults = sample_fault_set(oracle.graph(), FaultModel::Vertex, i % 3, &[], r);
            if i % 3 == 0 {
                Query::path(u, v, faults)
            } else {
                Query::distance(u, v, faults)
            }
        })
        .collect()
}

/// Bit-exact comparison plus walk validation: the replica's path answers
/// must be genuine walks of the *replica's* spanner whose summed weights
/// reproduce the distance exactly — so agreement is not just memoized
/// numbers but a consistent replicated structure.
fn assert_replica_matches(
    label: &str,
    primary: &impl SpannerOracle,
    replica: &impl SpannerOracle,
    queries: &[Query],
) {
    let want = primary.answer_batch(queries);
    let got = replica.answer_batch(queries);
    for ((query, want), got) in queries.iter().zip(&want).zip(&got) {
        assert_eq!(
            want.distance().map(f64::to_bits),
            got.distance().map(f64::to_bits),
            "{label}: distance bits diverged for {query:?}"
        );
        assert_eq!(
            want.path(),
            got.path(),
            "{label}: witness path diverged for {query:?}"
        );
        if let Some(path) = got.path() {
            assert_eq!(path.first(), Some(&query.u), "{label}");
            assert_eq!(path.last(), Some(&query.v), "{label}");
            let mut walked = 0.0;
            for pair in path.windows(2) {
                let e = replica
                    .spanner()
                    .edge_between(pair[0], pair[1])
                    .unwrap_or_else(|| {
                        panic!("{label}: path edge {pair:?} missing from the replica spanner")
                    });
                walked += replica.spanner().weight(e);
            }
            let d = got.distance().expect("path answers carry a distance");
            assert!(
                (walked - d).abs() < 1e-9,
                "{label}: walk {walked} != distance {d}"
            );
        }
    }
}

/// The generic runner: age the primary, snapshot it mid-churn, bootstrap a
/// replica, then drive ≥20 waves through the primary while the replica
/// catches up in lagged batches via journal cursors.
fn replicate_against<O: SpannerOracle + Snapshottable>(label: &str, mut primary: O, seed: u64) {
    let churn = ChurnConfig::default();
    let mut r = rng(seed);

    // Mid-churn bootstrap: the snapshot already carries repaired edges,
    // accumulated damage, and a non-zero epoch.
    for _ in 0..3 {
        let wave = sample_fault_set(primary.graph(), FaultModel::Vertex, 2, &[], &mut r);
        primary.apply_wave(&wave, &churn);
    }
    let bootstrap = Snapshot::capture(&primary);
    let mut replica: Replica<O> =
        Replica::bootstrap(&bootstrap, churn.clone()).expect("replica bootstraps");
    assert_eq!(replica.epoch(), primary.epoch(), "{label}: bootstrap epoch");

    let mut journal = WaveJournal::new(primary.epoch());
    let mut outstanding = 0u64;
    for round in 0..WAVES {
        let label = format!("{label} wave {round}");
        let wave = sample_fault_set(primary.graph(), FaultModel::Vertex, 2, &[], &mut r);
        let report = primary.apply_wave(&wave, &churn);
        journal
            .append(JournalEntry {
                epoch: primary.epoch(),
                wave,
                report_digest: report.digest(),
            })
            .expect("journal accepts the primary's own history");
        outstanding += 1;
        assert_eq!(replica.lag(&journal), outstanding, "{label}: lag");

        // Catch up only every few rounds, so the replica replays batches
        // of 1–3 entries — the realistic lagged-subscriber shape.
        if round % 3 == 2 || round == WAVES - 1 {
            let entries = journal
                .entries_since(replica.epoch())
                .expect("replica epoch is always inside the journal window");
            let applied = replica.catch_up(entries).expect("replay stays convergent");
            assert_eq!(applied as u64, outstanding, "{label}: applied count");
            outstanding = 0;
            assert_eq!(replica.epoch(), primary.epoch(), "{label}: epoch");
            assert_replica_matches(&label, &primary, replica.oracle(), &burst(&primary, &mut r));
        }
    }

    // The journal itself round-trips: a second replica from the same
    // snapshot, replaying the *decoded* journal, lands on the same epoch.
    let decoded = WaveJournal::decode(&journal.encode()).expect("journal round-trips");
    let mut twin: Replica<O> =
        Replica::bootstrap(&bootstrap, churn).expect("twin replica bootstraps");
    twin.catch_up(decoded.entries())
        .expect("decoded journal replays clean");
    assert_eq!(twin.epoch(), primary.epoch(), "{label}: twin epoch");

    // The end state is the real assertion: byte-identical snapshots mean
    // the replicas converged to the primary's exact structure, not merely
    // to matching answers on the sampled battery.
    let primary_bytes = Snapshot::capture(&primary);
    assert_eq!(
        Snapshot::capture(replica.oracle()),
        primary_bytes,
        "{label}: replica re-capture must be byte-identical"
    );
    assert_eq!(
        Snapshot::capture(twin.oracle()),
        primary_bytes,
        "{label}: twin re-capture must be byte-identical"
    );
}

#[test]
fn single_backend_replica_matches_primary() {
    let mut r = rng(9201);
    let graph = generators::connected_gnp(80, 0.09, &mut r);
    let primary = FaultOracle::build(graph, SpannerParams::vertex(2, 2), OracleOptions::default());
    replicate_against("single", primary, 21);
}

#[test]
fn sharded_backend_replica_matches_primary() {
    let mut r = rng(9202);
    let graph = generators::connected_gnp(80, 0.09, &mut r);
    let options = ShardedOptions {
        plan: ShardPlanOptions {
            shards: 4,
            ..ShardPlanOptions::default()
        },
        ..ShardedOptions::default()
    };
    let primary = ShardedOracle::build(graph, SpannerParams::vertex(2, 2), options);
    replicate_against("sharded", primary, 22);
}

#[test]
fn hierarchical_backend_replica_matches_primary() {
    let mut r = rng(9203);
    let graph = generators::connected_gnp(120, 0.06, &mut r);
    let options = HierarchicalOptions {
        plan: ShardPlanOptions {
            shards: 4,
            ..ShardPlanOptions::default()
        },
        ..HierarchicalOptions::default()
    };
    let primary = HierarchicalOracle::build(graph, SpannerParams::vertex(2, 2), options);
    replicate_against("hierarchical", primary, 23);
}

/// A weighted family: replicated distances must agree off unit weights
/// too, where any float-order divergence in repair would show up first.
#[test]
fn weighted_replica_stays_bit_identical() {
    let mut r = rng(9204);
    let base = {
        let mut g = generators::random_geometric(60, 0.22, &mut r);
        generators::overlay_random_spanning_tree(&mut g, &mut r);
        generators::with_random_weights(&g, 1.0, 8.0, &mut r)
    };
    let primary = FaultOracle::build(base, SpannerParams::vertex(2, 1), OracleOptions::default());
    replicate_against("weighted", primary, 24);
}

/// The service-level feed: a journaling [`OracleService`] primary records
/// every wave it publishes, and a library replica catching up from
/// [`ServiceJournal::entries_since`] cursors converges byte-identically —
/// the exact entries the wire subscription streams.
#[test]
fn service_journal_feeds_a_replica_to_convergence() {
    let mut r = rng(9205);
    let graph = generators::connected_gnp(60, 0.1, &mut r);
    let build = |g| FaultOracle::build(g, SpannerParams::vertex(2, 2), OracleOptions::default());

    let service = OracleService::new(build(graph), ServiceConfig::default().with_journal());
    let journal = service.journal().expect("journaling enabled");

    // Age the primary, then bootstrap the replica mid-stream.
    for _ in 0..3 {
        let wave = sample_fault_set(
            &service.oracle().graph().clone(),
            FaultModel::Vertex,
            2,
            &[],
            &mut r,
        );
        wave_through(&service, wave);
    }
    let bootstrap = Snapshot::capture(&*service.oracle());
    let mut replica: Replica<FaultOracle> =
        Replica::bootstrap(&bootstrap, ChurnConfig::default()).expect("replica bootstraps");

    for _ in 0..8 {
        let wave = sample_fault_set(
            &service.oracle().graph().clone(),
            FaultModel::Vertex,
            2,
            &[],
            &mut r,
        );
        wave_through(&service, wave);
        let entries = journal
            .entries_since(replica.epoch())
            .expect("replica cursor stays inside the journal");
        replica.catch_up(&entries).expect("replay stays convergent");
        assert_eq!(replica.epoch(), service.oracle().epoch());
    }
    assert_eq!(
        Snapshot::capture(replica.oracle()),
        Snapshot::capture(&*service.oracle()),
        "service-fed replica must re-capture byte-identically"
    );
}

fn wave_through(service: &OracleService<FaultOracle>, wave: FaultSet) {
    let ticket = service.submit_wave(wave);
    match service.wait(ticket) {
        TicketState::Waved(_) => {}
        other => panic!("wave did not land: {other:?}"),
    }
}
