//! Shared workload helpers for the cross-crate integration tests.

use ftspan_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic RNG for a named scenario.
#[must_use]
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// The workload families the integration suite sweeps over, mirroring the
/// families used in EXPERIMENTS.md.
#[must_use]
pub fn small_workloads(seed: u64) -> Vec<(&'static str, Graph)> {
    let mut r = rng(seed);
    vec![
        ("gnp-sparse", generators::connected_gnp(18, 0.2, &mut r)),
        ("gnp-dense", generators::connected_gnp(14, 0.5, &mut r)),
        ("grid", generators::grid(4, 4)),
        ("ring-of-cliques", generators::ring_of_cliques(4, 4)),
        ("complete", generators::complete(12)),
        ("geometric", generators::random_geometric(16, 0.45, &mut r)),
        (
            "weighted-gnp",
            generators::with_random_weights(
                &generators::connected_gnp(14, 0.35, &mut r),
                1.0,
                10.0,
                &mut r,
            ),
        ),
    ]
}

/// Medium-size workloads for property/sampled tests.
#[must_use]
pub fn medium_workloads(seed: u64) -> Vec<(&'static str, Graph)> {
    let mut r = rng(seed);
    vec![
        ("gnp-80", generators::connected_gnp(80, 0.08, &mut r)),
        ("ba-80", generators::barabasi_albert(80, 3, &mut r)),
        ("ws-80", generators::watts_strogatz(80, 4, 0.2, &mut r)),
        ("grid-9x9", generators::grid(9, 9)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_nonempty_and_deterministic() {
        let a = small_workloads(1);
        let b = small_workloads(1);
        assert_eq!(a.len(), b.len());
        for ((name_a, g_a), (name_b, g_b)) in a.iter().zip(b.iter()) {
            assert_eq!(name_a, name_b);
            assert_eq!(g_a.edge_count(), g_b.edge_count());
            assert!(g_a.edge_count() > 0, "{name_a} must have edges");
        }
        assert!(!medium_workloads(2).is_empty());
    }
}
