//! A full chaos drill against the serving stack, printing the measured
//! degradation envelope as a markdown table.
//!
//! Three adversarial scenarios interleave against one worker-pool
//! `OracleService` while a freshly built mirror oracle checks every answer
//! bit-for-bit: a targeted high-degree fault wave under a Zipf flash
//! crowd, a correlated regional failure, and a random-wave control. A
//! fourth drill runs the engineered portal-severing geometry, where every
//! cut edge between two shards dies and exactness survives only through
//! the `BoundaryIndex` global fallback. The drill then turns to the wire:
//! a `ChaosProxy` replays the three classic TCP failures (mid-frame
//! disconnect, slow-loris stall, truncated reply) against a live
//! `ftspan-server` and reports the explicit degradation each produced.
//!
//! The process exits nonzero if any invariant breaks — the harness panics
//! on the first divergent bit — so this binary doubles as the CI chaos
//! smoke. `CHAOS_ROUNDS` (default 2) scales the per-scenario round count.
//!
//! Run with `cargo run --release -p ftspan-examples --bin chaos_drill`.

use std::time::Duration;

use ftspan::{sample_fault_set, FaultModel, FaultSet, SpannerParams};
use ftspan_graph::{generators, vid};
use ftspan_oracle::chaos::{
    correlated_regional_wave, high_degree_wave, portal_severing_wave, run_chaos,
    weakest_boundary_pair, zipf_queries, ChaosRound, ScenarioPlan,
};
use ftspan_oracle::{
    FaultOracle, OracleOptions, OracleService, Query, ServiceConfig, ShardPlan, ShardPlanOptions,
    ShardedOptions, ShardedOracle,
};
use ftspan_server::{
    ChaosProxy, Client, ProxyFault, ProxyPlan, Reply, Server, ServerConfig, ShedReason,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let rounds: usize = std::env::var("CHAOS_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    println!("# Chaos drill ({rounds} round(s) per scenario)\n");

    adversarial_waves(rounds);
    portal_severing();
    wire_faults();

    println!("\nchaos drill passed: every answer exact, every failure explicit.");
}

/// Interleaved adversarial scenarios against a worker-pool sharded
/// service, mirrored by an identical twin.
fn adversarial_waves(rounds: usize) {
    let build = |seed: u64| {
        let mut r = StdRng::seed_from_u64(seed);
        let graph = generators::connected_gnp(120, 0.06, &mut r);
        let options = ShardedOptions {
            plan: ShardPlanOptions {
                shards: 4,
                ..ShardPlanOptions::default()
            },
            ..ShardedOptions::default()
        };
        ShardedOracle::build(graph, SpannerParams::vertex(2, 2), options)
    };
    let mut mirror = build(41);
    let backend = build(41);
    let graph = mirror.graph().clone();
    let empty = FaultSet::empty(FaultModel::Vertex);

    let shard = (0..mirror.shard_count() as u32)
        .max_by_key(|&s| mirror.plan().core(s as usize).len())
        .expect("at least one shard");
    let regional = correlated_regional_wave(&mirror, shard, 2, 42);
    let random_control = {
        let mut r = StdRng::seed_from_u64(43);
        sample_fault_set(&graph, FaultModel::Vertex, 2, &[], &mut r)
    };

    let service = OracleService::new(backend, ServiceConfig::default().with_workers(2));
    let plans = vec![
        ScenarioPlan {
            name: "targeted-high-degree".into(),
            rounds: (0..rounds as u64 + 1)
                .map(|i| ChaosRound {
                    queries: zipf_queries(&graph, 30, 1.3, &empty, 100 + i),
                    wave: (i == 0).then(|| high_degree_wave(&graph, 2)),
                })
                .collect(),
        },
        ScenarioPlan {
            name: "correlated-regional".into(),
            rounds: (0..rounds as u64 + 1)
                .map(|i| ChaosRound {
                    queries: zipf_queries(&graph, 25, 1.1, &empty, 200 + i),
                    wave: (i == 0).then(|| regional.clone()),
                })
                .collect(),
        },
        ScenarioPlan {
            name: "random-control".into(),
            rounds: (0..rounds as u64 + 1)
                .map(|i| ChaosRound {
                    queries: zipf_queries(&graph, 25, 1.1, &empty, 300 + i),
                    wave: (i == 0).then(|| random_control.clone()),
                })
                .collect(),
        },
        ScenarioPlan::queries_only(
            "flash-crowd",
            (0..rounds as u64 + 1)
                .map(|i| zipf_queries(&graph, 50, 1.5, &empty, 400 + i))
                .collect(),
        ),
    ];
    let report = run_chaos(&service, &mut mirror, plans);
    println!("## Degradation envelope (worker-pool sharded service)\n");
    print!("{}", report.markdown_table());
    let metrics = service.metrics();
    println!(
        "\n(waves {}, total recovery {} us, answers checked {}, coalesced {})\n",
        metrics.waves,
        metrics.wave_recovery_micros,
        report.total_answered(),
        metrics.coalesced,
    );
}

/// The engineered severing geometry: a 60-ring in three arcs, both
/// portals of the only shard-0/shard-1 cut edge faulted — exactness must
/// survive through the global fallback.
fn portal_severing() {
    let graph = generators::cycle(60);
    let plan = ShardPlan::from_shard_of((0..60u32).map(|i| i / 20).collect());
    let params = SpannerParams::vertex(2, 2);
    let mut mirror = FaultOracle::build(graph.clone(), params, OracleOptions::default());
    let backend = ShardedOracle::build_with_plan(graph, params, plan, ShardedOptions::default());
    let (a, b) = weakest_boundary_pair(&backend).expect("adjacent shards");
    let severing = portal_severing_wave(&backend, a, b);
    let service = OracleService::new(backend, ServiceConfig::default().with_workers(2));

    let bursts: Vec<Vec<Query>> = (0..2)
        .map(|r| {
            [(10, 30), (5, 35), (15, 25), (12, 28)]
                .iter()
                .map(|&(u, v): &(usize, usize)| {
                    if (u + r) % 2 == 0 {
                        Query::path(vid(u), vid(v), severing.clone())
                    } else {
                        Query::distance(vid(u), vid(v), severing.clone())
                    }
                })
                .collect()
        })
        .collect();
    let report = run_chaos(
        &service,
        &mut mirror,
        vec![ScenarioPlan::queries_only("portal-severing", bursts)],
    );
    let scenario = &report.scenarios[0];
    assert!(
        scenario.global_fallbacks > 0,
        "severing every portal must force the global fallback"
    );
    println!("## Portal severing (shards {a} <-> {b}, portals faulted)\n");
    print!("{}", report.markdown_table());
    println!(
        "\n(global fallbacks {}, fallback rate {:.0}% — every answer still bit-exact)\n",
        scenario.global_fallbacks,
        scenario.fallback_rate() * 100.0
    );
}

/// The three classic wire failures through the fault-injecting proxy.
fn wire_faults() {
    let build = |seed: u64| {
        let mut r = StdRng::seed_from_u64(seed);
        let graph = generators::connected_gnp(60, 0.1, &mut r);
        FaultOracle::build(graph, SpannerParams::vertex(2, 2), OracleOptions::default())
    };
    println!("## Wire faults (through the chaos proxy)\n");
    println!("| fault | client sees | server |");
    println!("|---|---|---|");

    // Mid-frame disconnect.
    {
        let service = OracleService::new(build(51), ServiceConfig::default());
        let server =
            Server::start(service, "127.0.0.1:0", ServerConfig::default()).expect("server");
        let proxy = ChaosProxy::start(
            server.local_addr(),
            ProxyPlan {
                to_server: ProxyFault::CloseAfter { bytes: 6 },
                to_client: ProxyFault::None,
            },
        )
        .expect("proxy");
        let mut victim = Client::connect(proxy.local_addr()).expect("connect");
        let outcome = victim.distance(vid(3), vid(20), FaultSet::empty(FaultModel::Vertex));
        assert!(outcome.is_err(), "half a request cannot be answered");
        let mut healthy = Client::connect(server.local_addr()).expect("connect");
        let served = healthy
            .distance(vid(3), vid(20), FaultSet::empty(FaultModel::Vertex))
            .expect("served");
        assert!(matches!(served, Reply::Answer(_)));
        proxy.shutdown();
        let _ = server.shutdown();
        println!("| mid-frame disconnect | connection error | handler released, healthy clients served |");
    }

    // Slow-loris stall.
    {
        let service = OracleService::new(build(52), ServiceConfig::default());
        let config = ServerConfig {
            read_timeout: Some(Duration::from_millis(150)),
            ..ServerConfig::default()
        };
        let server = Server::start(service, "127.0.0.1:0", config).expect("server");
        let proxy = ChaosProxy::start(
            server.local_addr(),
            ProxyPlan {
                to_server: ProxyFault::StallAfter { bytes: 5 },
                to_client: ProxyFault::None,
            },
        )
        .expect("proxy");
        let mut loris = Client::connect(proxy.local_addr()).expect("connect");
        let reply = loris
            .distance(vid(1), vid(30), FaultSet::empty(FaultModel::Vertex))
            .expect("typed reply");
        assert!(matches!(reply, Reply::Shed(ShedReason::Timeout)));
        proxy.shutdown();
        let _ = server.shutdown();
        println!("| slow-loris stall | typed `Shed(Timeout)`, then close | read timeout freed the handler |");
    }

    // Truncated reply.
    {
        let service = OracleService::new(build(53), ServiceConfig::default());
        let server =
            Server::start(service, "127.0.0.1:0", ServerConfig::default()).expect("server");
        let proxy = ChaosProxy::start(
            server.local_addr(),
            ProxyPlan {
                to_server: ProxyFault::None,
                to_client: ProxyFault::CloseAfter { bytes: 6 },
            },
        )
        .expect("proxy");
        let mut victim = Client::connect(proxy.local_addr()).expect("connect");
        let err = victim
            .distance(vid(2), vid(25), FaultSet::empty(FaultModel::Vertex))
            .expect_err("truncated reply is an explicit error");
        proxy.shutdown();
        let _ = server.shutdown();
        println!(
            "| truncated reply | explicit `{}` error | unaffected |",
            err.kind()
        );
    }
}
