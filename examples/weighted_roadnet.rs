//! Weighted fault-tolerant spanners of a road-network-like geometric graph.
//!
//! Random geometric graphs with Euclidean edge weights are the classical
//! setting in which fault-tolerant spanners were first studied; this example
//! exercises Algorithm 4 (the weighted modified greedy) and measures the
//! stretch that actually materializes under random and targeted failures.
//!
//! Run with `cargo run -p ftspan-examples --bin weighted_roadnet`.

use ftspan::verify::{fault_free_stretch, verify_spanner, VerificationMode};
use ftspan::{poly_greedy_spanner, sample_fault_set, FaultModel, SpannerParams};
use ftspan_graph::dijkstra::weighted_distance;
use ftspan_graph::{generators, GraphView};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);

    // 300 intersections scattered in the unit square, roads between points
    // within distance 0.12, weighted by Euclidean length.
    let graph = generators::random_geometric(300, 0.12, &mut rng);
    println!(
        "road network: {} vertices, {} edges, total length {:.1}",
        graph.vertex_count(),
        graph.edge_count(),
        graph.total_weight()
    );

    for (k, f) in [(2u32, 1u32), (2, 2), (3, 1)] {
        let params = SpannerParams::vertex(k, f);
        let result = poly_greedy_spanner(&graph, params);
        let report = verify_spanner(
            &graph,
            &result.spanner,
            params,
            VerificationMode::Sampled {
                samples: 60,
                seed: 5,
            },
        );
        println!(
            "k={k} f={f}: {:5} edges ({:4.1}% of input, {:4.1}% of total length), \
             fault-free stretch {:.2}, sampled-fault check: {}",
            result.spanner.edge_count(),
            100.0 * result.stats.retention(),
            100.0 * result.spanner.total_weight() / graph.total_weight(),
            fault_free_stretch(&graph, &result.spanner),
            if report.is_valid() {
                "valid"
            } else {
                "VIOLATED"
            },
        );
    }

    // Show one concrete detour: fail two random intersections and compare the
    // detour length in the spanner against the detour in the full network.
    let params = SpannerParams::vertex(2, 2);
    let result = poly_greedy_spanner(&graph, params);
    let faults = sample_fault_set(&graph, FaultModel::Vertex, 2, &[], &mut rng);
    let view_g = faults.apply(&graph);
    let view_h = faults.apply(&result.spanner);
    let mut shown = 0;
    for (_, edge) in graph.edges() {
        let (u, v) = edge.endpoints();
        if !view_g.contains_vertex(u) || !view_g.contains_vertex(v) {
            continue;
        }
        let (Some(dg), Some(dh)) = (
            weighted_distance(&view_g, u, v),
            weighted_distance(&view_h, u, v),
        ) else {
            continue;
        };
        if dh > dg * 1.05 {
            println!(
                "after failing {:?}: route {u}->{v} is {:.3} in G\\F vs {:.3} in the spanner \
                 (stretch {:.2}, allowed {})",
                faults.vertex_faults(),
                dg,
                dh,
                dh / edge.weight(),
                params.stretch()
            );
            shown += 1;
            if shown >= 3 {
                break;
            }
        }
    }
    if shown == 0 {
        println!("the spanner matched the faulted network's distances on every sampled route");
    }
}
