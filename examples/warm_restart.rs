//! Warm restart end to end: snapshot a churned sharded oracle, restore it
//! instantly, and serve both over the wire.
//!
//! The demo builds an `f = 2` fault-tolerant 3-spanner of a 600-node
//! network across 4 shards, ages it with three permanent fault waves, then:
//!
//! 1. **captures** a [`Snapshot`] and restores it, comparing the restore
//!    time against the cold build and proving the restored oracle answers
//!    bit-identically;
//! 2. **serves** the restored oracle with `ftspan-server` on an ephemeral
//!    loopback port, runs real client traffic against it (including a
//!    `METRICS` scrape and a `SNAPSHOT` download — a snapshot taken *of a
//!    restored oracle, over the wire*), and shuts down gracefully.
//!
//! Run with `cargo run --release -p ftspan-examples --bin warm_restart`.

use std::time::Instant;

use ftspan::{sample_fault_set, FaultModel, SpannerParams};
use ftspan_graph::{generators, vid};
use ftspan_oracle::{
    ChurnConfig, OracleService, Query, ServiceConfig, ShardPlanOptions, ShardedOptions,
    ShardedOracle, Snapshot, SpannerOracle,
};
use ftspan_server::{BatchEntry, Client, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(4040);
    let n = 600;
    let graph = generators::connected_gnp(n, 14.0 / (n as f64 - 1.0), &mut rng);
    let params = SpannerParams::vertex(2, 2);
    let options = ShardedOptions {
        plan: ShardPlanOptions {
            shards: 4,
            ..ShardPlanOptions::default()
        },
        ..ShardedOptions::default()
    };

    println!(
        "network: {} nodes, {} links; building {params} over 4 shards...",
        graph.vertex_count(),
        graph.edge_count()
    );
    let cold_start = Instant::now();
    let mut oracle = ShardedOracle::build(graph, params, options);
    let cold = cold_start.elapsed();
    println!(
        "cold build: {} spanner edges in {:.2}s",
        oracle.global().spanner().edge_count(),
        cold.as_secs_f64()
    );

    // Age the oracle: permanent damage, incrementally repaired. The
    // snapshot below carries the *repaired* spanner and the damage record,
    // not the pristine build.
    let churn = ChurnConfig::default();
    for _ in 0..3 {
        let wave = sample_fault_set(oracle.graph(), FaultModel::Vertex, 3, &[], &mut rng);
        let report = SpannerOracle::apply_wave(&mut oracle, &wave, &churn);
        println!(
            "wave: {} vertices failed, repair added {} edges (epoch {})",
            wave.len(),
            report.outcome.edges_added,
            oracle.epoch()
        );
    }

    // --- 1. Capture and restore. -------------------------------------
    let bytes = Snapshot::capture(&oracle);
    let restore_start = Instant::now();
    let restored: ShardedOracle = Snapshot::restore(&bytes).expect("snapshot restores");
    let restore = restore_start.elapsed();
    println!(
        "snapshot: {} bytes; restore {:.0}ms vs cold build {:.0}ms ({:.1}x faster)",
        bytes.len(),
        restore.as_secs_f64() * 1e3,
        cold.as_secs_f64() * 1e3,
        cold.as_secs_f64() / restore.as_secs_f64()
    );

    let check: Vec<Query> = (0..500)
        .map(|_| {
            let u = vid(rng.gen_range(0..n));
            let mut v = vid(rng.gen_range(0..n));
            while v == u {
                v = vid(rng.gen_range(0..n));
            }
            let faults = sample_fault_set(oracle.graph(), FaultModel::Vertex, 2, &[], &mut rng);
            Query::distance(u, v, faults)
        })
        .collect();
    let want = oracle.answer_batch(&check);
    let got = restored.answer_batch(&check);
    let identical = want
        .iter()
        .zip(&got)
        .all(|(w, g)| w.distance().map(f64::to_bits) == g.distance().map(f64::to_bits));
    assert!(identical, "restored oracle must answer bit-identically");
    println!(
        "replay: {} queries, restored answers bit-identical",
        check.len()
    );

    // --- 2. Serve the restored oracle over TCP. -----------------------
    let service = OracleService::new(restored, ServiceConfig::default().with_max_in_flight(256));
    let server = Server::start(service, "127.0.0.1:0", ServerConfig::default())
        .expect("server starts on an ephemeral port");
    println!("serving on {}", server.local_addr());

    let mut client = Client::connect(server.local_addr()).expect("client connects");
    let entries = client.batch(check.clone()).expect("batch served");
    let served = entries
        .iter()
        .zip(&want)
        .filter(|(entry, want)| match entry {
            BatchEntry::Answered(a) => {
                a.distance.map(f64::to_bits) == want.distance().map(f64::to_bits)
            }
            BatchEntry::Shed => false,
        })
        .count();
    println!(
        "wire: {}/{} batched answers match the pre-restart oracle bit-for-bit",
        served,
        entries.len()
    );

    let metrics = client.metrics().expect("metrics scrape");
    let queries_line = metrics
        .lines()
        .find(|l| l.starts_with("ftspan_queries_total"))
        .expect("pinned metric family present");
    println!("metrics: {queries_line}");

    // A snapshot of a restored oracle, fetched over the wire, restores
    // again — warm restarts chain.
    let wire_snapshot = client.snapshot().expect("snapshot download");
    let again: ShardedOracle = Snapshot::restore(&wire_snapshot).expect("wire snapshot restores");
    assert_eq!(again.epoch(), oracle.epoch());
    println!(
        "wire snapshot: {} bytes, restores to epoch {}",
        wire_snapshot.len(),
        again.epoch()
    );

    drop(client);
    let service = server.shutdown();
    let summary = service.metrics();
    println!(
        "shutdown: drained cleanly; served {} submissions ({} coalesced)",
        summary.submitted, summary.coalesced
    );
}
