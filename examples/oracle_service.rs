//! A fault-tolerant distance service under rolling fault waves.
//!
//! Builds an `f = 2` fault-tolerant 3-spanner of a 1 000-node network, then
//! serves 10 000 mixed distance/path queries while waves of vertices fail
//! permanently between batches. After every wave the oracle repairs the
//! spanner locally around the damage (escalating to a full warm-start respan
//! only when needed) and keeps serving. The run prints throughput, the
//! shortest-path-tree cache hit rate, and the maximum stretch actually
//! observed against exact distances in the surviving network.
//!
//! Run with `cargo run --release -p ftspan-examples --bin oracle_service`.

use std::time::Instant;

use ftspan::{sample_fault_set, FaultModel, FaultSet, SpannerParams};
use ftspan_graph::dijkstra::DijkstraScratch;
use ftspan_graph::{generators, vid};
use ftspan_oracle::{ChurnConfig, FaultOracle, OracleOptions, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2020);
    let n = 1_000;
    let graph = generators::connected_gnp(n, 16.0 / (n as f64 - 1.0), &mut rng);
    let params = SpannerParams::vertex(2, 2);
    println!(
        "network: {} nodes, {} links; building {params}...",
        graph.vertex_count(),
        graph.edge_count()
    );
    let build_start = Instant::now();
    let mut oracle = FaultOracle::build(graph, params, OracleOptions::default());
    println!(
        "spanner: {} edges ({:.1}% of the network) in {:.1}s",
        oracle.spanner().edge_count(),
        100.0 * oracle.spanner().edge_count() as f64 / oracle.graph().edge_count() as f64,
        build_start.elapsed().as_secs_f64()
    );

    let waves = 5;
    let queries_per_wave = 2_000;
    let churn = ChurnConfig::default();
    let mut total_queries = 0usize;
    let mut total_secs = 0.0f64;
    let mut max_stretch = 0.0f64;
    let mut audits = 0usize;
    let mut scratch = DijkstraScratch::new();

    for wave_no in 0..waves {
        if wave_no > 0 {
            // Six more vertices fail for good — well beyond the f = 2 design
            // tolerance, so repair has real work to do.
            let wave = sample_fault_set(oracle.graph(), FaultModel::Vertex, 6, &[], &mut rng);
            let outcome = oracle.apply_wave(&wave, &churn);
            println!(
                "wave {wave_no}: {} failed, {} spanner edges survived, \
                 {} broken pairs, {} edges repaired{} in {:.2}s",
                outcome.wave.len(),
                outcome.surviving_spanner_edges,
                outcome.broken_pairs.len(),
                outcome.edges_added,
                if outcome.escalated {
                    " (escalated)"
                } else {
                    ""
                },
                outcome.elapsed.as_secs_f64()
            );
        }

        // A bursty batch: a small pool of transient fault sets shared by
        // many queries, and a pool of hot sources (popular service
        // endpoints) mixing distance and path requests.
        let fault_pool: Vec<FaultSet> = (0..8)
            .map(|_| sample_fault_set(oracle.graph(), FaultModel::Vertex, 2, &[], &mut rng))
            .collect();
        let hot_sources: Vec<usize> = (0..32).map(|_| rng.gen_range(0..n)).collect();
        let queries: Vec<Query> = (0..queries_per_wave)
            .map(|i| {
                let u = vid(hot_sources[rng.gen_range(0..hot_sources.len())]);
                let mut v = vid(rng.gen_range(0..n));
                while v == u {
                    v = vid(rng.gen_range(0..n));
                }
                let faults = fault_pool[i % fault_pool.len()].clone();
                if i % 4 == 0 {
                    Query::path(u, v, faults)
                } else {
                    Query::distance(u, v, faults)
                }
            })
            .collect();

        let start = Instant::now();
        let answers = oracle.answer_batch(&queries);
        let secs = start.elapsed().as_secs_f64();
        total_queries += queries.len();
        total_secs += secs;

        // Audit a sample of answers against exact distances in G \ F.
        for (query, answer) in queries.iter().zip(&answers).step_by(97) {
            let Some(d_h) = answer.distance else { continue };
            let view = query.faults.apply(oracle.graph());
            let tree = scratch.shortest_path_tree(&view, query.u);
            if let Some(d_g) = tree.distance_to(query.v) {
                if d_g > 0.0 {
                    max_stretch = max_stretch.max(d_h / d_g);
                    audits += 1;
                }
            }
        }
        println!(
            "wave {wave_no}: {} queries in {:.2}s ({:.0} queries/s)",
            queries.len(),
            secs,
            queries.len() as f64 / secs
        );
    }

    let snapshot = oracle.metrics().snapshot();
    println!();
    println!("== service summary ==");
    println!(
        "throughput:       {:.0} queries/s over {} queries",
        total_queries as f64 / total_secs,
        total_queries
    );
    println!(
        "cache:            {:.1}% hit rate ({} trees built for {} queries)",
        100.0 * snapshot.hit_rate(),
        snapshot.trees_built,
        snapshot.queries
    );
    println!(
        "churn:            {} waves, {} edges repaired, {} escalations",
        snapshot.waves_applied, snapshot.edges_added_by_repair, snapshot.repairs_escalated
    );
    println!(
        "max stretch:      {max_stretch:.2} over {audits} audited answers (bound: {})",
        oracle.params().stretch()
    );
    assert!(
        max_stretch <= oracle.stretch_bound() + 1e-9,
        "stretch bound violated"
    );
}
