//! A fault-tolerant distance service under rolling fault waves, behind the
//! [`OracleService`] front-end.
//!
//! Builds an `f = 2` fault-tolerant 3-spanner of a 1 000-node network and
//! serves five bursts of 2 000 mixed distance/path requests while waves of
//! vertices fail permanently between bursts. Everything goes through the
//! service's one lifecycle API — submit, drain, wave, snapshot: requests
//! are admitted at most 512 per round, exact duplicates (hot sources ×
//! hot targets over a small pool of transient fault sets — bursty traffic
//! repeats itself) are coalesced into one backend query each, and waves
//! are FIFO barriers handled by the same loop. The run prints throughput,
//! the coalesced/shed counts, the tree-cache hit rate, and the maximum
//! stretch actually observed against exact distances in the surviving
//! network.
//!
//! The sharded variant of this demo (`sharded_service`) runs the *same
//! driver* over a `ShardedOracle` — the whole loop is written once against
//! the `SpannerOracle` trait (see `examples/src/lib.rs`).
//!
//! Run with `cargo run --release -p ftspan-examples --bin oracle_service`.

use std::time::Instant;

use ftspan::{sample_fault_set, FaultModel, FaultSet, SpannerParams};
use ftspan_examples::{run_service_demo, DemoConfig};
use ftspan_graph::{generators, vid};
use ftspan_oracle::{FaultOracle, OracleOptions, Query, ServiceConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2020);
    let n = 1_000;
    let graph = generators::connected_gnp(n, 16.0 / (n as f64 - 1.0), &mut rng);
    let params = SpannerParams::vertex(2, 2);
    println!(
        "network: {} nodes, {} links; building {params}...",
        graph.vertex_count(),
        graph.edge_count()
    );
    let build_start = Instant::now();
    let oracle = FaultOracle::build(graph, params, OracleOptions::default());
    println!(
        "spanner: {} edges ({:.1}% of the network) in {:.1}s",
        oracle.spanner().edge_count(),
        100.0 * oracle.spanner().edge_count() as f64 / oracle.graph().edge_count() as f64,
        build_start.elapsed().as_secs_f64()
    );

    let queries_per_wave = 2_000;
    let config = ServiceConfig::default().with_max_in_flight(512);
    let demo = DemoConfig {
        waves: 5,
        wave_size: 6,
        seed: 2021,
        chunk: 0,
    };

    let metrics = run_service_demo(oracle, config, demo, move |oracle, rng| {
        // Bursty traffic: hot sources and hot targets over a small pool of
        // transient fault sets, so exact repeats occur and coalescing has
        // real duplicates to merge.
        let fault_pool: Vec<FaultSet> = (0..8)
            .map(|_| sample_fault_set(oracle.graph(), FaultModel::Vertex, 2, &[], rng))
            .collect();
        let hot_sources: Vec<usize> = (0..24).map(|_| rng.gen_range(0..n)).collect();
        let hot_targets: Vec<usize> = (0..32).map(|_| rng.gen_range(0..n)).collect();
        (0..queries_per_wave)
            .map(|i| {
                let u = vid(hot_sources[rng.gen_range(0..hot_sources.len())]);
                let mut v = if i % 2 == 0 {
                    vid(hot_targets[rng.gen_range(0..hot_targets.len())])
                } else {
                    vid(rng.gen_range(0..n))
                };
                while v == u {
                    v = vid(rng.gen_range(0..n));
                }
                let faults = fault_pool[i % fault_pool.len()].clone();
                if i % 4 == 0 {
                    Query::path(u, v, faults)
                } else {
                    Query::distance(u, v, faults)
                }
            })
            .collect()
    });

    assert!(
        metrics.coalesced > 0,
        "hot-pool traffic must contain duplicates for the front-end to merge"
    );
    assert_eq!(metrics.shed, 0, "no cooldown configured, nothing sheds");
}
