//! Shared driver for the service examples.
//!
//! `oracle_service` and `sharded_service` used to carry two hand-rolled
//! copies of the same loop (waves, batch submission, throughput and stretch
//! accounting). With the [`SpannerOracle`] trait and the [`OracleService`]
//! front-end there is exactly one driver, written once and parameterized by
//! backend and traffic shape; the bins only build an oracle, pick a
//! [`ServiceConfig`], and describe their traffic.

use std::time::Instant;

use ftspan::{sample_fault_set, FaultModel};
use ftspan_graph::dijkstra::DijkstraScratch;
use ftspan_oracle::{OracleService, Query, ServiceConfig, SpannerOracle, TicketId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shape of one service demo run.
#[derive(Clone, Copy, Debug)]
pub struct DemoConfig {
    /// Traffic bursts to serve (a fault wave lands before every burst but
    /// the first).
    pub waves: usize,
    /// Vertices failing permanently per wave.
    pub wave_size: usize,
    /// RNG seed for waves (traffic draws from the same stream).
    pub seed: u64,
    /// Requests submitted per pump round, modelling arrival over time
    /// (`0` = the whole burst arrives at once). With chunked arrival only
    /// the traffic landing while a rebuilt lane is still cooling gets
    /// shed; later chunks are served normally.
    pub chunk: usize,
}

/// Runs the full demo — rolling waves, bursty traffic through the
/// [`OracleService`], a sampled stretch audit against exact distances in
/// the surviving network — and prints the service summary. Returns the
/// final unified metrics so the caller can print backend-specific extras.
///
/// `traffic` produces one burst of queries given the backend (for sizing
/// and locality) and the shared RNG.
pub fn run_service_demo<O, F>(
    oracle: O,
    config: ServiceConfig,
    demo: DemoConfig,
    mut traffic: F,
) -> ftspan_oracle::ServiceMetrics
where
    O: SpannerOracle + 'static,
    F: FnMut(&O, &mut StdRng) -> Vec<Query>,
{
    let mut rng = StdRng::seed_from_u64(demo.seed);
    let stretch_bound = oracle.stretch_bound();
    let service = OracleService::new(oracle, config);
    let mut scratch = DijkstraScratch::new();
    let mut total_queries = 0usize;
    let mut total_secs = 0.0f64;
    let mut max_stretch = 0.0f64;
    let mut audits = 0usize;

    for wave_no in 0..demo.waves {
        if wave_no > 0 {
            // Permanent damage goes through the same front door as queries;
            // the wave is a FIFO barrier, so the burst below is served
            // entirely against the repaired spanner.
            let wave = sample_fault_set(
                service.oracle().graph(),
                FaultModel::Vertex,
                demo.wave_size,
                &[],
                &mut rng,
            );
            let ticket = service.submit_wave(wave);
            service.drain();
            let report = service.wave_report(ticket).expect("wave applied by drain");
            println!(
                "wave {wave_no}: {} failed, {} broken pairs, {} edges repaired{}; \
                 rebuilt lanes {:?}{} in {:.2}s",
                report.outcome.wave.len(),
                report.outcome.broken_pairs.len(),
                report.outcome.edges_added,
                if report.outcome.escalated {
                    " (escalated)"
                } else {
                    ""
                },
                report.rebuilt_lanes,
                if report.severed_pairs.is_empty() {
                    String::new()
                } else {
                    format!("; severed shard pairs {:?}", report.severed_pairs)
                },
                report.outcome.elapsed.as_secs_f64(),
            );
        }

        let queries = {
            // Epoch handles pin the published epoch; keep this one scoped
            // so the inline wave barrier above can take exclusive access.
            let epoch = service.oracle();
            traffic(&epoch, &mut rng)
        };
        let start = Instant::now();
        let mut tickets: Vec<TicketId> = Vec::with_capacity(queries.len());
        let mut outcome = ftspan_oracle::PumpOutcome::default();
        let chunk = if demo.chunk == 0 {
            queries.len().max(1)
        } else {
            demo.chunk
        };
        for arrivals in queries.chunks(chunk) {
            tickets.extend(service.submit_batch_ref(arrivals.iter()));
            outcome.absorb(service.pump());
        }
        outcome.absorb(service.drain());
        let secs = start.elapsed().as_secs_f64();
        total_queries += outcome.answered;
        total_secs += secs;

        // Audit a sample of answers against exact distances in G ∖ F.
        {
            let epoch = service.oracle();
            for (query, ticket) in queries.iter().zip(&tickets).step_by(97) {
                // Shed tickets never reached the backend; nothing to audit.
                let Some(answer) = service.answer(*ticket) else {
                    continue;
                };
                let Some(d_h) = answer.distance() else {
                    continue;
                };
                let view = query.faults.apply(epoch.graph());
                let tree = scratch.shortest_path_tree(&view, query.u);
                if let Some(d_g) = tree.distance_to(query.v) {
                    if d_g > 0.0 {
                        max_stretch = max_stretch.max(d_h / d_g);
                        audits += 1;
                    }
                }
            }
        }

        println!(
            "burst {wave_no}: {} answered in {:.2}s ({:.0} queries/s), \
             {} coalesced, {} shed",
            outcome.answered,
            secs,
            outcome.answered as f64 / secs,
            outcome.coalesced,
            outcome.shed,
        );
        service.recycle();
    }

    let metrics = service.metrics();
    println!();
    println!("== service summary ==");
    println!(
        "throughput:       {:.0} queries/s over {} answered ({} submitted)",
        total_queries as f64 / total_secs,
        total_queries,
        metrics.submitted,
    );
    println!(
        "front-end:        {} coalesced away, {} shed, {} pump rounds",
        metrics.coalesced, metrics.shed, metrics.rounds
    );
    println!(
        "cache:            {:.1}% hit rate ({} trees built for {} backend queries)",
        100.0 * metrics.hit_rate(),
        metrics.trees_built,
        metrics.queries,
    );
    if let Some(split) = &metrics.locality {
        println!(
            "locality:         {:.1}% ({} local, {} stitched, {} fallbacks); shed by lane {:?}",
            100.0 * split.locality_rate(),
            split.local,
            split.stitched,
            split.global_fallbacks,
            service.shed_by_lane(),
        );
    }
    println!(
        "churn:            {} waves applied through the service",
        metrics.waves
    );
    println!(
        "max stretch:      {max_stretch:.2} over {audits} audited answers (bound: {stretch_bound})"
    );
    assert!(
        max_stretch <= stretch_bound + 1e-9,
        "stretch bound violated"
    );
    metrics
}
