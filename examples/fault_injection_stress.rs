//! Adversarial fault-injection stress test.
//!
//! Builds fault-tolerant and non-fault-tolerant spanners of the same graph
//! and then attacks both with thousands of random and targeted fault sets,
//! counting how often each one breaks (stretch above 2k − 1 or disconnection
//! of a surviving pair). This is the "why fault tolerance matters"
//! demonstration, and also a soak test of the verifier.
//!
//! Run with `cargo run -p ftspan-examples --bin fault_injection_stress`.

use ftspan::verify::{verify_spanner, verify_under_fault_set, VerificationMode};
use ftspan::{
    nonft::greedy_spanner, poly_greedy_spanner, sample_fault_set, FaultModel, SpannerParams,
};
use ftspan_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let graph = generators::connected_gnp(120, 0.08, &mut rng);
    let k = 2u32;
    let f = 2u32;
    let params = SpannerParams::vertex(k, f);
    println!(
        "graph: {} vertices, {} edges; attacking with {f}-vertex fault sets",
        graph.vertex_count(),
        graph.edge_count()
    );

    let ft = poly_greedy_spanner(&graph, params);
    let plain = greedy_spanner(&graph, k);
    println!(
        "fault-tolerant spanner: {} edges | plain greedy spanner: {} edges",
        ft.spanner.edge_count(),
        plain.spanner.edge_count()
    );

    let trials = 2_000;
    let mut ft_failures = 0usize;
    let mut plain_failures = 0usize;
    for _ in 0..trials {
        let faults = sample_fault_set(&graph, FaultModel::Vertex, f as usize, &[], &mut rng);
        if !verify_under_fault_set(&graph, &ft.spanner, params, &faults).is_valid() {
            ft_failures += 1;
        }
        if !verify_under_fault_set(&graph, &plain.spanner, params, &faults).is_valid() {
            plain_failures += 1;
        }
    }
    println!(
        "random {f}-vertex fault sets ({trials} trials): fault-tolerant spanner violated {ft_failures} times, \
         plain spanner violated {plain_failures} times"
    );

    // Targeted attacks via the verifier's adversarial sampling.
    let adversarial = VerificationMode::Sampled {
        samples: 400,
        seed: 1234,
    };
    let ft_report = verify_spanner(&graph, &ft.spanner, params, adversarial.clone());
    let plain_report = verify_spanner(&graph, &plain.spanner, params, adversarial);
    println!(
        "targeted attacks (400 fault sets aimed at spanner shortest paths): \
         fault-tolerant violations {}, plain violations {}",
        ft_report.violations.len(),
        plain_report.violations.len()
    );

    assert_eq!(
        ft_failures, 0,
        "the fault-tolerant spanner must survive every random fault set"
    );
    assert!(
        ft_report.is_valid(),
        "the fault-tolerant spanner must survive every targeted fault set"
    );
    println!("fault-tolerant spanner survived every attack; plain greedy did not.");
}
