//! A sharded fault-tolerant distance service behind the [`OracleService`]
//! front-end, with **per-shard admission control**.
//!
//! Builds an `f = 2` fault-tolerant 3-spanner of a 990-node grid network,
//! partitions it into 6 shards with the padded-decomposition plan, and
//! serves locality-biased traffic through the *same generic driver* the
//! single-oracle demo uses (`examples/src/lib.rs`) — the backend is just a
//! `ShardedOracle` this time, so the service's admission lanes become the
//! shards: in-flight work is bounded per shard (96 per round), and after a
//! fault wave the shards the wave rebuilt *cool down* for one round, during
//! which their traffic is shed while untouched shards keep serving from
//! warm caches. Every answered request is identical to what the single
//! global oracle would return — sharding is a scaling layer, not an
//! approximation.
//!
//! Run with `cargo run --release -p ftspan-examples --bin sharded_service`.

use std::time::Instant;

use ftspan::{sample_fault_set, FaultModel, FaultSet, SpannerParams};
use ftspan_examples::{run_service_demo, DemoConfig};
use ftspan_graph::bfs::BfsScratch;
use ftspan_graph::{generators, vid};
use ftspan_oracle::{
    Query, RebuildPolicy, ServiceConfig, ShardPlanOptions, ShardedOptions, ShardedOracle,
};
use rand::Rng;

fn main() {
    let graph = generators::grid(33, 30);
    let n = graph.vertex_count();
    let params = SpannerParams::vertex(2, 2);
    println!(
        "network: {} nodes, {} links; building {params} across 6 shards...",
        n,
        graph.edge_count()
    );
    let build_start = Instant::now();
    let options = ShardedOptions {
        plan: ShardPlanOptions {
            shards: 6,
            ..ShardPlanOptions::default()
        },
        ..ShardedOptions::default()
    };
    let oracle = ShardedOracle::build(graph, params, options);
    println!(
        "spanner: {} edges; {} shards, largest region {} vertices, {} cut edges; built in {:.1}s",
        oracle.spanner().edge_count(),
        oracle.shard_count(),
        (0..oracle.shard_count())
            .map(|s| oracle.shard_members(s).len())
            .max()
            .unwrap_or(0),
        oracle.boundary().cut_edges().len(),
        build_start.elapsed().as_secs_f64()
    );

    let queries_per_wave = 2_500;
    // Per-shard admission: at most 96 queries per shard per round, and
    // shards rebuilt by a wave shed their traffic for one round while their
    // caches re-warm.
    let config = ServiceConfig::default()
        .with_lane_in_flight(96)
        .with_rebuild_cooldown(1)
        .with_rebuild_policy(RebuildPolicy::Shed);
    let demo = DemoConfig {
        waves: 4,
        wave_size: 4,
        seed: 2027,
        chunk: 500,
    };

    let mut bfs = BfsScratch::new();
    let metrics = run_service_demo(oracle, config, demo, move |oracle, rng| {
        // Locality-biased traffic: most queries stay near their source,
        // with a fresh fault-set pool per burst.
        let fault_pool: Vec<FaultSet> = (0..8)
            .map(|_| sample_fault_set(oracle.graph(), FaultModel::Vertex, 2, &[], rng))
            .collect();
        (0..queries_per_wave)
            .map(|i| {
                let u = vid(rng.gen_range(0..n));
                let near = bfs.hop_distances_within(oracle.graph(), u, 5);
                let candidates: Vec<usize> = near
                    .iter()
                    .enumerate()
                    .filter(|(j, d)| d.is_some() && *j != u.index())
                    .map(|(j, _)| j)
                    .collect();
                let v = if candidates.is_empty() {
                    vid((u.index() + 1) % n)
                } else {
                    vid(candidates[rng.gen_range(0..candidates.len())])
                };
                let faults = fault_pool[i % fault_pool.len()].clone();
                if i % 5 == 0 {
                    Query::path(u, v, faults)
                } else {
                    Query::distance(u, v, faults)
                }
            })
            .collect()
    });

    let split = metrics
        .locality
        .expect("sharded backends report a locality split");
    assert!(
        split.local + split.stitched > 0,
        "some traffic must be served from shard state"
    );
    assert!(
        metrics.shed > 0,
        "waves rebuild shards, so the shed policy must have fired"
    );
}
