//! A sharded fault-tolerant distance service.
//!
//! Builds an `f = 2` fault-tolerant 3-spanner of a 990-node grid network,
//! partitions it into shards with the padded-decomposition plan, and serves
//! locality-biased traffic from per-shard oracles: intra-shard queries hit
//! the shard's own region (core plus a `2k − 1` halo), cross-shard queries
//! are stitched through the boundary index's portals, and only queries whose
//! shortest path provably might wander outside a region fall back to the
//! global oracle. Between batches, fault waves hit the network; the churn
//! fan-out repairs globally but rebuilds only the shard regions the damage
//! actually touched, so untouched shards keep their warm caches.
//!
//! Every printed answer is identical to what the single global oracle would
//! return — sharding is a scaling layer, not an approximation.
//!
//! Run with `cargo run --release -p ftspan-examples --bin sharded_service`.

use std::time::Instant;

use ftspan::{sample_fault_set, FaultModel, SpannerParams};
use ftspan_graph::bfs::BfsScratch;
use ftspan_graph::{generators, vid};
use ftspan_oracle::{ChurnConfig, Query, ShardPlanOptions, ShardedOptions, ShardedOracle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2027);
    let graph = generators::grid(33, 30);
    let n = graph.vertex_count();
    let params = SpannerParams::vertex(2, 2);
    println!(
        "network: {} nodes, {} links; building {params} across 6 shards...",
        n,
        graph.edge_count()
    );
    let build_start = Instant::now();
    let options = ShardedOptions {
        plan: ShardPlanOptions {
            shards: 6,
            ..ShardPlanOptions::default()
        },
        ..ShardedOptions::default()
    };
    let mut oracle = ShardedOracle::build(graph.clone(), params, options);
    println!(
        "spanner: {} edges; {} shards, largest region {} vertices, {} cut edges; built in {:.1}s",
        oracle.spanner().edge_count(),
        oracle.shard_count(),
        (0..oracle.shard_count())
            .map(|s| oracle.shard_members(s).len())
            .max()
            .unwrap_or(0),
        oracle.boundary().cut_edges().len(),
        build_start.elapsed().as_secs_f64()
    );

    let waves = 4;
    let queries_per_wave = 2_500;
    let churn = ChurnConfig::default();
    let mut bfs = BfsScratch::new();
    let mut total_queries = 0usize;
    let mut total_secs = 0.0f64;

    for wave_no in 0..waves {
        if wave_no > 0 {
            let wave = sample_fault_set(oracle.graph(), FaultModel::Vertex, 4, &[], &mut rng);
            let outcome = oracle.apply_wave(&wave, &churn);
            println!(
                "wave {wave_no}: {} failed, {} spanner edges repaired{}; rebuilt shards {:?} \
                 (the rest kept their caches){}",
                outcome.global.wave.len(),
                outcome.global.edges_added,
                if outcome.global.escalated {
                    " (escalated)"
                } else {
                    ""
                },
                outcome.rebuilt_shards,
                if outcome.severed_pairs.is_empty() {
                    String::new()
                } else {
                    format!("; severed shard pairs {:?}", outcome.severed_pairs)
                },
            );
        }

        // Locality-biased traffic: most queries stay near their source, with
        // a fresh fault set pool per wave.
        let fault_pool: Vec<_> = (0..8)
            .map(|_| sample_fault_set(oracle.graph(), FaultModel::Vertex, 2, &[], &mut rng))
            .collect();
        let queries: Vec<Query> = (0..queries_per_wave)
            .map(|i| {
                let u = vid(rng.gen_range(0..n));
                let near = bfs.hop_distances_within(oracle.graph(), u, 5);
                let candidates: Vec<usize> = near
                    .iter()
                    .enumerate()
                    .filter(|(j, d)| d.is_some() && *j != u.index())
                    .map(|(j, _)| j)
                    .collect();
                let v = if candidates.is_empty() {
                    vid((u.index() + 1) % n)
                } else {
                    vid(candidates[rng.gen_range(0..candidates.len())])
                };
                let faults = fault_pool[i % fault_pool.len()].clone();
                if i % 5 == 0 {
                    Query::path(u, v, faults)
                } else {
                    Query::distance(u, v, faults)
                }
            })
            .collect();

        let start = Instant::now();
        let answers = oracle.answer_batch(&queries);
        let secs = start.elapsed().as_secs_f64();
        total_queries += answers.len();
        total_secs += secs;

        let served = answers.iter().filter(|a| a.is_reachable()).count();
        let snap = oracle.metrics().snapshot();
        println!(
            "batch {wave_no}: {} queries in {:.2}s ({:.0}/s), {served} reachable; \
             cumulative locality {:.1}% ({} local, {} stitched, {} fallbacks)",
            answers.len(),
            secs,
            answers.len() as f64 / secs,
            100.0 * snap.locality_rate(),
            snap.local,
            snap.stitched,
            snap.global_fallbacks,
        );
    }

    // Spot-audit: sharded answers equal the global oracle's.
    let mut audited = 0usize;
    for _ in 0..200 {
        let u = vid(rng.gen_range(0..n));
        let v = vid(rng.gen_range(0..n));
        let faults = sample_fault_set(oracle.graph(), FaultModel::Vertex, 2, &[], &mut rng);
        assert_eq!(
            oracle.distance(u, v, &faults),
            oracle.global().distance(u, v, &faults),
            "sharded and global answers must agree"
        );
        audited += 1;
    }
    println!(
        "done: {total_queries} queries in {total_secs:.2}s ({:.0}/s overall); \
         {audited} answers audited against the global oracle, all identical; \
         shard epochs {:?}",
        total_queries as f64 / total_secs,
        oracle.shard_epochs(),
    );
}
