//! Building a fault-tolerant overlay with the LOCAL and CONGEST algorithms.
//!
//! Simulates the two distributed constructions of Section 5 of the paper on
//! the same network and reports rounds, message sizes, and output size next
//! to the centralized construction — the trade-off the paper's Section 5
//! is about.
//!
//! Run with `cargo run -p ftspan-examples --bin distributed_overlay`.

use ftspan::{bounds, poly_greedy_spanner, SpannerParams};
use ftspan_distributed::{congest_baswana_sen, congest_ft_spanner, local_ft_spanner};
use ftspan_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let n = 120;
    let graph = generators::connected_gnp(n, 0.06, &mut rng);
    let params = SpannerParams::vertex(2, 1);
    println!(
        "overlay network: {} nodes, {} links; target: {params}",
        graph.vertex_count(),
        graph.edge_count()
    );
    println!();

    // Centralized reference.
    let central = poly_greedy_spanner(&graph, params);
    println!(
        "centralized modified greedy : {:4} edges (no communication)",
        central.spanner.edge_count()
    );

    // LOCAL model (Theorem 12).
    let local = local_ft_spanner(&graph, params, &mut rng);
    println!(
        "LOCAL construction          : {:4} edges | {:4} rounds (bound O(log n) ~ {:.0}), {} partitions",
        local.spanner.edge_count(),
        local.rounds.rounds,
        bounds::local_round_bound(n),
        local.partitions,
    );

    // CONGEST building block: distributed Baswana-Sen (Theorem 14).
    let bs = congest_baswana_sen(&graph, params.k(), &mut rng);
    println!(
        "CONGEST Baswana-Sen (f = 0) : {:4} edges | {:4} rounds (bound O(k^2) = {:.0}), max {} words/edge/round",
        bs.spanner.edge_count(),
        bs.rounds.rounds,
        bounds::baswana_sen_round_bound(params.k()),
        bs.rounds.max_words_per_edge_round,
    );

    // CONGEST fault-tolerant construction (Theorem 15).
    let congest = congest_ft_spanner(&graph, params, &mut rng);
    println!(
        "CONGEST FT construction     : {:4} edges | {:4} rounds ({} phase-1 + {} phase-2), {} DK iterations, congestion factor {}",
        congest.result.spanner.edge_count(),
        congest.result.rounds.rounds,
        congest.phase1_rounds,
        congest.phase2_rounds,
        congest.iterations,
        congest.max_edge_multiplicity,
    );
    println!(
        "                              round bound O(f^2(log f + loglog n) + k^2 f log n) ~ {:.0}",
        bounds::congest_round_bound(n, params.k(), params.f())
    );
    println!();
    println!(
        "LOCAL matches the centralized size up to a log factor in O(log n) rounds;\n\
         CONGEST keeps messages at O(1) words but pays a larger spanner\n\
         (the f^2 dependence of [DK11]) and more rounds — the exact trade-off of Theorem 15."
    );
}
