//! Fault-tolerant backbone design for a data-center-style topology.
//!
//! The scenario the paper's introduction motivates: a distributed system is
//! modelled as a graph, and we want a sparse backbone (a spanner) that keeps
//! routes short even when a few switches fail. The workload is a
//! ring-of-cliques topology (racks joined by aggregation links) — a shape
//! with small cuts, which is exactly where naive sparsification breaks.
//!
//! The example compares four constructions on the same topology:
//! the non-fault-tolerant greedy, the paper's modified greedy, the exact
//! greedy baseline, and Dinitz–Krauthgamer.
//!
//! Run with `cargo run -p ftspan-examples --bin network_backbone`.

use ftspan::verify::{verify_spanner, VerificationMode};
use ftspan::{Algorithm, SpannerBuilder, SpannerParams};
use ftspan_graph::generators;

fn main() {
    // 8 racks of 6 servers each, fully meshed inside a rack, one uplink
    // between consecutive racks.
    let graph = generators::ring_of_cliques(8, 6);
    println!(
        "topology: ring of 8 cliques x 6 = {} vertices, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    );

    let params = SpannerParams::vertex(2, 1);
    let verification = VerificationMode::Sampled {
        samples: 200,
        seed: 11,
    };

    for (label, algorithm) in [
        (
            "classic greedy (no fault tolerance)",
            Algorithm::ClassicGreedy,
        ),
        ("modified greedy (this paper)", Algorithm::PolyGreedy),
        ("exact greedy [BDPW18/BP19]", Algorithm::ExactGreedy),
        ("Dinitz-Krauthgamer [DK11]", Algorithm::DinitzKrauthgamer),
    ] {
        let result = SpannerBuilder::from_params(params)
            .algorithm(algorithm)
            .seed(3)
            .build(&graph)
            .expect("construction must succeed on this small topology");
        let report = verify_spanner(&graph, &result.spanner, params, verification.clone());
        println!(
            "{label:40} {:4} edges | 1-fault-tolerant 3-spanner: {}",
            result.spanner.edge_count(),
            if report.is_valid() { "yes" } else { "NO" },
        );
    }

    println!();
    println!(
        "The classic greedy is the sparsest but fails under a single switch fault;\n\
         the fault-tolerant constructions pay a modest number of extra edges for\n\
         guaranteed 3-stretch routing around any one failure."
    );
}
