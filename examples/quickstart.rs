//! Quickstart: build a fault-tolerant spanner of a random network, verify it,
//! and compare its size against the paper's bound.
//!
//! Run with `cargo run -p ftspan-examples --bin quickstart`.

use ftspan::verify::{verify_spanner, VerificationMode};
use ftspan::{bounds, poly_greedy_spanner, SpannerParams};
use ftspan_graph::{generators, metrics};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // A dense-ish random communication network on 200 nodes.
    let graph = generators::connected_gnp(200, 0.08, &mut rng);
    let summary = metrics::summarize(&graph);
    println!(
        "input graph: {} vertices, {} edges (avg degree {:.1})",
        summary.vertices, summary.edges, summary.average_degree
    );

    // Build a 2-vertex-fault-tolerant 3-spanner with the paper's
    // polynomial-time modified greedy algorithm.
    let params = SpannerParams::vertex(2, 2);
    let result = poly_greedy_spanner(&graph, params);
    println!("built {params}");
    println!(
        "spanner: {} edges ({:.1}% of the input), {} LBC calls, {} BFS runs, {:?}",
        result.spanner.edge_count(),
        100.0 * result.stats.retention(),
        result.stats.lbc_calls,
        result.stats.bfs_runs,
        result.stats.elapsed,
    );
    println!(
        "Theorem 8 reference curve k·f^(1-1/k)·n^(1+1/k): {:.0} edges",
        bounds::poly_greedy_size_bound(200, params.k(), params.f())
    );

    // Spot-check the fault-tolerance property on 50 sampled fault sets
    // (exhaustive verification is exponential in f and meant for tiny graphs).
    let report = verify_spanner(
        &graph,
        &result.spanner,
        params,
        VerificationMode::Sampled {
            samples: 50,
            seed: 7,
        },
    );
    println!(
        "verification: {} fault sets, {} pairs checked, max stretch {:.2}, valid = {}",
        report.fault_sets_checked,
        report.pairs_checked,
        report.max_stretch,
        report.is_valid()
    );
    assert!(report.is_valid(), "the spanner must satisfy Definition 1");
}
