//! Quickstart: build a fault-tolerant spanner of a random network, verify
//! it, compare its size against the paper's bound, and serve a few queries
//! through the [`SpannerOracle`] trait — the one interface every serving
//! backend implements.
//!
//! Run with `cargo run -p ftspan-examples --bin quickstart`.

use ftspan::verify::{verify_spanner, VerificationMode};
use ftspan::{bounds, poly_greedy_spanner, FaultSet, SpannerParams};
use ftspan_graph::{generators, metrics, vid};
use ftspan_oracle::{FaultOracle, OracleOptions, Query, SpannerOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Serves a couple of probes through the trait. Written against
/// `SpannerOracle`, this function works unchanged over a [`FaultOracle`],
/// a `ShardedOracle`, or anything else that upholds the exactness contract.
fn probe<O: SpannerOracle>(oracle: &O) {
    let faults = FaultSet::vertices([vid(7), vid(19)]);
    let answer = oracle.answer(&Query::distance(vid(0), vid(42), faults.clone()));
    println!(
        "d(0, 42) avoiding {{7, 19}}: {:?} (reachable: {})",
        answer.distance(),
        answer.is_reachable()
    );
    if let Some((d, path)) = oracle.path(vid(0), vid(42), &faults) {
        println!("  witness path: {} hops, length {d:.0}", path.len() - 1);
    }
    println!(
        "  served at epoch {} under stretch bound {}",
        oracle.epoch(),
        oracle.stretch_bound()
    );
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // A dense-ish random communication network on 200 nodes.
    let graph = generators::connected_gnp(200, 0.08, &mut rng);
    let summary = metrics::summarize(&graph);
    println!(
        "input graph: {} vertices, {} edges (avg degree {:.1})",
        summary.vertices, summary.edges, summary.average_degree
    );

    // Build a 2-vertex-fault-tolerant 3-spanner with the paper's
    // polynomial-time modified greedy algorithm.
    let params = SpannerParams::vertex(2, 2);
    let result = poly_greedy_spanner(&graph, params);
    println!("built {params}");
    println!(
        "spanner: {} edges ({:.1}% of the input), {} LBC calls, {} BFS runs, {:?}",
        result.spanner.edge_count(),
        100.0 * result.stats.retention(),
        result.stats.lbc_calls,
        result.stats.bfs_runs,
        result.stats.elapsed,
    );
    println!(
        "Theorem 8 reference curve k·f^(1-1/k)·n^(1+1/k): {:.0} edges",
        bounds::poly_greedy_size_bound(200, params.k(), params.f())
    );

    // Spot-check the fault-tolerance property on 50 sampled fault sets
    // (exhaustive verification is exponential in f and meant for tiny graphs).
    let report = verify_spanner(
        &graph,
        &result.spanner,
        params,
        VerificationMode::Sampled {
            samples: 50,
            seed: 7,
        },
    );
    println!(
        "verification: {} fault sets, {} pairs checked, max stretch {:.2}, valid = {}",
        report.fault_sets_checked,
        report.pairs_checked,
        report.max_stretch,
        report.is_valid()
    );
    assert!(report.is_valid(), "the spanner must satisfy Definition 1");

    // Wrap the verified spanner in a serving oracle and query it through
    // the backend-agnostic trait.
    let oracle = FaultOracle::from_result(graph, result, OracleOptions::default());
    probe(&oracle);
}
